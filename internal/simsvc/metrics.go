package simsvc

import (
	"fmt"
	"strings"

	"kagura/internal/journal"
	"kagura/internal/obs"
	"kagura/internal/store"
)

// Histogram bucket bounds. Buckets are fixed — never adaptive — so the
// exposition stays byte-stable for a given set of observations and series
// remain comparable across restarts and deployments (DESIGN.md §11).
var (
	// latencySecondsBuckets spans sub-millisecond cache hits through
	// multi-minute sweep legs, roughly 2.5× apart.
	latencySecondsBuckets = []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120, 300,
	}
	// queueDepthBuckets are powers of two up to the default QueueDepth, plus
	// an explicit empty-queue bucket.
	queueDepthBuckets = []float64{
		0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
	}
	// sizeBytesBuckets cover 1 KiB through 64 MiB, 4× apart — results are a
	// few KiB without a cycle log and snapshots grow with trace position.
	sizeBytesBuckets = []float64{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20,
	}
)

// metrics holds the service counters; guarded by Service.mu.
type metrics struct {
	jobsRun      int64 // simulations actually executed
	jobsCached   int64 // jobs served from the cache or coalesced in flight
	jobsFailed   int64
	jobsCanceled int64

	// Per-stage latency accumulators (nanoseconds).
	queueNanos int64 // submit → worker pickup
	queueCount int64
	runNanos   int64 // worker pickup → successful completion
	runCount   int64

	// Warm-start snapshot cache outcomes. Each hit skips re-simulating the
	// base prefix, saving warmCyclesSaved simulated cycles in total.
	warmHits        int64
	warmMisses      int64
	warmCyclesSaved int64

	// Resilience counters.
	panicsRecovered int64 // compute panics caught by a worker
	jobsRetried     int64 // retry attempts after transient failures
	jobsShed        int64 // submissions rejected by the load-shedding breaker
	degradedRuns    int64 // warm starts downgraded to cold runs
	// errorsByCode tallies terminal and rejection errors by taxonomy code.
	errorsByCode map[ErrorCode]int64

	// Result cache accounting: evictions from the bounded cache, and the
	// estimated bytes currently retained by ready entries.
	cacheEvictions int64
	cacheBytes     int64

	// storePublishDrops counts asynchronous store writes dropped because the
	// publish queue was full (persistence is best-effort; serving is not).
	storePublishDrops int64

	// journalReplayed counts jobs re-submitted from the intent journal at
	// startup (the journal's own counters live in journal.MetricsSnapshot).
	journalReplayed int64

	// Fixed-bucket histograms; guarded by Service.mu like the counters, so
	// the unsynchronized obs.Histogram is safe here.
	queueSecondsHist      *obs.Histogram
	runSecondsHist        *obs.Histogram
	queueDepthHist        *obs.Histogram
	queueDepthSampledHist *obs.Histogram
	resultBytesHist       *obs.Histogram
	snapshotBytesHist     *obs.Histogram
}

// init constructs the histograms; called once from New before any job flows.
func (m *metrics) init() {
	m.queueSecondsHist = obs.NewHistogram(latencySecondsBuckets...)
	m.runSecondsHist = obs.NewHistogram(latencySecondsBuckets...)
	m.queueDepthHist = obs.NewHistogram(queueDepthBuckets...)
	m.queueDepthSampledHist = obs.NewHistogram(queueDepthBuckets...)
	m.resultBytesHist = obs.NewHistogram(sizeBytesBuckets...)
	m.snapshotBytesHist = obs.NewHistogram(sizeBytesBuckets...)
}

// countError books one error under its taxonomy code.
func (m *metrics) countError(code ErrorCode) {
	if m.errorsByCode == nil {
		m.errorsByCode = make(map[ErrorCode]int64)
	}
	m.errorsByCode[code]++
}

// MetricsSnapshot is a point-in-time view of the service counters.
type MetricsSnapshot struct {
	JobsRun      int64 `json:"jobsRun"`
	JobsCached   int64 `json:"jobsCached"`
	JobsFailed   int64 `json:"jobsFailed"`
	JobsCanceled int64 `json:"jobsCanceled"`
	QueueDepth   int   `json:"queueDepth"`
	Workers      int   `json:"workers"`
	CachedKeys   int   `json:"cachedKeys"`

	// Warm-start snapshot cache: reuse outcomes, cached snapshot count, and
	// total simulated cycles skipped by reusing prefixes.
	WarmStartHits   int64 `json:"warmStartHits"`
	WarmStartMisses int64 `json:"warmStartMisses"`
	WarmSnapshots   int   `json:"warmSnapshots"`
	WarmCyclesSaved int64 `json:"warmCyclesSaved"`

	// Per-stage latency: total seconds and sample counts.
	QueueSecondsTotal float64 `json:"queueSecondsTotal"`
	QueueSamples      int64   `json:"queueSamples"`
	RunSecondsTotal   float64 `json:"runSecondsTotal"`
	RunSamples        int64   `json:"runSamples"`

	// Resilience: recovered compute panics, retry attempts, shed
	// submissions, warm starts degraded to cold runs, the breaker state, and
	// error totals keyed by taxonomy code (only non-zero codes appear).
	PanicsRecovered int64            `json:"panicsRecovered"`
	JobsRetried     int64            `json:"jobsRetried"`
	JobsShed        int64            `json:"jobsShed"`
	DegradedRuns    int64            `json:"degradedRuns"`
	Shedding        bool             `json:"shedding"`
	Errors          map[string]int64 `json:"errors,omitempty"`

	// Result cache occupancy and eviction pressure. CacheCapacity is the
	// configured entry bound (0 = unbounded); CacheBytes estimates the bytes
	// retained by ready entries.
	CacheBytes     int64 `json:"cacheBytes"`
	CacheCapacity  int   `json:"cacheCapacity"`
	CacheEvictions int64 `json:"cacheEvictions"`

	// Persistent store tier (internal/store): enabled state, disk-tier
	// counters, and publishes dropped because the async write queue was
	// full. Store fields are all zero when the tier is disabled.
	StoreEnabled      bool                  `json:"storeEnabled"`
	Store             store.MetricsSnapshot `json:"store"`
	StorePublishDrops int64                 `json:"storePublishDrops"`

	// Intent journal (internal/journal): enabled state, the journal's own
	// counters, and jobs re-submitted by startup replay. Journal fields are
	// all zero when journaling is disabled.
	JournalEnabled      bool                    `json:"journalEnabled"`
	Journal             journal.MetricsSnapshot `json:"journal"`
	JournalReplayedJobs int64                   `json:"journalReplayedJobs"`

	// Latency and size distributions (fixed buckets; see DESIGN.md §11).
	QueueSeconds obs.HistogramSnapshot `json:"queueSeconds"`
	RunSeconds   obs.HistogramSnapshot `json:"runSeconds"`
	QueueDepths  obs.HistogramSnapshot `json:"queueDepths"`
	// QueueDepthsSampled is the timer-sampled (time-weighted) queue-depth
	// distribution, beside the per-enqueue QueueDepths.
	QueueDepthsSampled obs.HistogramSnapshot `json:"queueDepthsSampled"`
	ResultBytes        obs.HistogramSnapshot `json:"resultBytes"`
	SnapshotBytes      obs.HistogramSnapshot `json:"snapshotBytes"`
}

// AvgQueueSeconds returns the mean submit→pickup latency.
func (m MetricsSnapshot) AvgQueueSeconds() float64 {
	if m.QueueSamples == 0 {
		return 0
	}
	return m.QueueSecondsTotal / float64(m.QueueSamples)
}

// AvgRunSeconds returns the mean execution latency of completed runs.
func (m MetricsSnapshot) AvgRunSeconds() float64 {
	if m.RunSamples == 0 {
		return 0
	}
	return m.RunSecondsTotal / float64(m.RunSamples)
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := MetricsSnapshot{
		JobsRun:            s.met.jobsRun,
		JobsCached:         s.met.jobsCached,
		JobsFailed:         s.met.jobsFailed,
		JobsCanceled:       s.met.jobsCanceled,
		QueueDepth:         len(s.queue),
		Workers:            s.opts.Workers,
		QueueSecondsTotal:  float64(s.met.queueNanos) / 1e9,
		QueueSamples:       s.met.queueCount,
		RunSecondsTotal:    float64(s.met.runNanos) / 1e9,
		RunSamples:         s.met.runCount,
		WarmStartHits:      s.met.warmHits,
		WarmStartMisses:    s.met.warmMisses,
		WarmSnapshots:      len(s.warm),
		WarmCyclesSaved:    s.met.warmCyclesSaved,
		PanicsRecovered:    s.met.panicsRecovered,
		JobsRetried:        s.met.jobsRetried,
		JobsShed:           s.met.jobsShed,
		DegradedRuns:       s.met.degradedRuns,
		Shedding:           s.shedding,
		CacheBytes:         s.met.cacheBytes,
		CacheCapacity:      s.opts.CacheCapacity,
		CacheEvictions:     s.met.cacheEvictions,
		StorePublishDrops:  s.met.storePublishDrops,
		QueueSeconds:       s.met.queueSecondsHist.Snapshot(),
		RunSeconds:         s.met.runSecondsHist.Snapshot(),
		QueueDepths:        s.met.queueDepthHist.Snapshot(),
		QueueDepthsSampled: s.met.queueDepthSampledHist.Snapshot(),
		ResultBytes:        s.met.resultBytesHist.Snapshot(),
		SnapshotBytes:      s.met.snapshotBytesHist.Snapshot(),
	}
	snap.JournalReplayedJobs = s.met.journalReplayed
	if s.store != nil {
		snap.StoreEnabled = true
		snap.Store = s.store.Metrics()
	}
	if s.jnl != nil {
		snap.JournalEnabled = true
		// The journal lock is a leaf (it never takes s.mu), so nesting it
		// under s.mu here cannot deadlock.
		snap.Journal = s.jnl.Metrics()
	}
	if len(s.met.errorsByCode) > 0 {
		snap.Errors = make(map[string]int64, len(s.met.errorsByCode))
		// Fixed iteration over the code catalog, not the map: rendering paths
		// downstream must stay byte-stable.
		for _, code := range errorCodes {
			if n := s.met.errorsByCode[code]; n > 0 {
				snap.Errors[string(code)] = n
			}
		}
	}
	snap.CachedKeys = s.lru.Len() // the LRU lists exactly the ready entries
	return snap
}

// Prometheus renders the snapshot in the Prometheus text exposition format
// (GET /metrics).
func (m MetricsSnapshot) Prometheus() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	w("# HELP kagura_jobs_total Jobs by terminal outcome.\n")
	w("# TYPE kagura_jobs_total counter\n")
	w("kagura_jobs_total{status=\"run\"} %d\n", m.JobsRun)
	w("kagura_jobs_total{status=\"cached\"} %d\n", m.JobsCached)
	w("kagura_jobs_total{status=\"failed\"} %d\n", m.JobsFailed)
	w("kagura_jobs_total{status=\"canceled\"} %d\n", m.JobsCanceled)
	w("# HELP kagura_queue_depth Jobs waiting for a worker.\n")
	w("# TYPE kagura_queue_depth gauge\n")
	w("kagura_queue_depth %d\n", m.QueueDepth)
	w("# HELP kagura_workers Size of the worker pool.\n")
	w("# TYPE kagura_workers gauge\n")
	w("kagura_workers %d\n", m.Workers)
	w("# HELP kagura_cached_keys Distinct memoized configurations.\n")
	w("# TYPE kagura_cached_keys gauge\n")
	w("kagura_cached_keys %d\n", m.CachedKeys)
	w("# HELP kagura_stage_seconds_total Cumulative per-stage latency.\n")
	w("# TYPE kagura_stage_seconds_total counter\n")
	w("kagura_stage_seconds_total{stage=\"queue\"} %g\n", m.QueueSecondsTotal)
	w("kagura_stage_seconds_total{stage=\"run\"} %g\n", m.RunSecondsTotal)
	w("# HELP kagura_stage_samples_total Per-stage latency sample counts.\n")
	w("# TYPE kagura_stage_samples_total counter\n")
	w("kagura_stage_samples_total{stage=\"queue\"} %d\n", m.QueueSamples)
	w("kagura_stage_samples_total{stage=\"run\"} %d\n", m.RunSamples)
	w("# HELP kagura_warm_start_total Warm-start snapshot cache outcomes.\n")
	w("# TYPE kagura_warm_start_total counter\n")
	w("kagura_warm_start_total{result=\"hit\"} %d\n", m.WarmStartHits)
	w("kagura_warm_start_total{result=\"miss\"} %d\n", m.WarmStartMisses)
	w("# HELP kagura_warm_snapshots Cached warm-start snapshots.\n")
	w("# TYPE kagura_warm_snapshots gauge\n")
	w("kagura_warm_snapshots %d\n", m.WarmSnapshots)
	w("# HELP kagura_warm_cycles_saved_total Simulated cycles skipped by warm-start reuse.\n")
	w("# TYPE kagura_warm_cycles_saved_total counter\n")
	w("kagura_warm_cycles_saved_total %d\n", m.WarmCyclesSaved)
	w("# HELP kagura_panics_recovered_total Compute panics recovered by workers.\n")
	w("# TYPE kagura_panics_recovered_total counter\n")
	w("kagura_panics_recovered_total %d\n", m.PanicsRecovered)
	w("# HELP kagura_jobs_retried_total Retry attempts after transient failures.\n")
	w("# TYPE kagura_jobs_retried_total counter\n")
	w("kagura_jobs_retried_total %d\n", m.JobsRetried)
	w("# HELP kagura_jobs_shed_total Submissions rejected by the load-shedding breaker.\n")
	w("# TYPE kagura_jobs_shed_total counter\n")
	w("kagura_jobs_shed_total %d\n", m.JobsShed)
	w("# HELP kagura_degraded_runs Warm starts degraded to cold runs.\n")
	w("# TYPE kagura_degraded_runs counter\n")
	w("kagura_degraded_runs %d\n", m.DegradedRuns)
	w("# HELP kagura_shedding Load-shedding breaker state (1 = open).\n")
	w("# TYPE kagura_shedding gauge\n")
	shedding := 0
	if m.Shedding {
		shedding = 1
	}
	w("kagura_shedding %d\n", shedding)
	w("# HELP kagura_errors_total Errors by taxonomy code.\n")
	w("# TYPE kagura_errors_total counter\n")
	// Every code renders every time, in catalog order — never by ranging the
	// map — so the exposition stays byte-stable.
	for _, code := range errorCodes {
		w("kagura_errors_total{code=%q} %d\n", string(code), m.Errors[string(code)])
	}
	w("# HELP kagura_cache_bytes Estimated bytes retained by the result cache.\n")
	w("# TYPE kagura_cache_bytes gauge\n")
	w("kagura_cache_bytes %d\n", m.CacheBytes)
	w("# HELP kagura_cache_capacity Result cache entry bound (0 = unbounded).\n")
	w("# TYPE kagura_cache_capacity gauge\n")
	w("kagura_cache_capacity %d\n", m.CacheCapacity)
	w("# HELP kagura_cache_evictions_total Results evicted from the bounded cache.\n")
	w("# TYPE kagura_cache_evictions_total counter\n")
	w("kagura_cache_evictions_total %d\n", m.CacheEvictions)
	// Persistent store tier. The families render unconditionally — zeros when
	// the tier is disabled — so the exposition stays byte-stable across
	// configurations with the same traffic.
	w("# HELP kagura_store_enabled Persistent store tier configured and open (1 = yes).\n")
	w("# TYPE kagura_store_enabled gauge\n")
	enabled := 0
	if m.StoreEnabled {
		enabled = 1
	}
	w("kagura_store_enabled %d\n", enabled)
	w("# HELP kagura_store_hits_total Persistent-store reads served, by entry kind.\n")
	w("# TYPE kagura_store_hits_total counter\n")
	w("kagura_store_hits_total{kind=\"result\"} %d\n", m.Store.ResultHits)
	w("kagura_store_hits_total{kind=\"checkpoint\"} %d\n", m.Store.CheckpointHits)
	w("# HELP kagura_store_misses_total Persistent-store reads that fell through to compute, by entry kind.\n")
	w("# TYPE kagura_store_misses_total counter\n")
	w("kagura_store_misses_total{kind=\"result\"} %d\n", m.Store.ResultMisses)
	w("kagura_store_misses_total{kind=\"checkpoint\"} %d\n", m.Store.CheckpointMisses)
	w("# HELP kagura_store_entries Entries indexed on disk.\n")
	w("# TYPE kagura_store_entries gauge\n")
	w("kagura_store_entries %d\n", m.Store.Entries)
	w("# HELP kagura_store_bytes Bytes retained on disk by indexed entries.\n")
	w("# TYPE kagura_store_bytes gauge\n")
	w("kagura_store_bytes %d\n", m.Store.Bytes)
	w("# HELP kagura_store_writes_total Entries written to the persistent store.\n")
	w("# TYPE kagura_store_writes_total counter\n")
	w("kagura_store_writes_total %d\n", m.Store.Writes)
	w("# HELP kagura_store_write_errors_total Persistent-store writes that failed.\n")
	w("# TYPE kagura_store_write_errors_total counter\n")
	w("kagura_store_write_errors_total %d\n", m.Store.WriteErrors)
	w("# HELP kagura_store_evictions_total Entries evicted under the disk budget.\n")
	w("# TYPE kagura_store_evictions_total counter\n")
	w("kagura_store_evictions_total %d\n", m.Store.Evictions)
	w("# HELP kagura_store_corrupt_entries_total Corrupt or torn entries quarantined by the persistent store.\n")
	w("# TYPE kagura_store_corrupt_entries_total counter\n")
	w("kagura_store_corrupt_entries_total %d\n", m.Store.CorruptEntries)
	w("# HELP kagura_store_publish_drops_total Asynchronous store writes dropped because the publish queue was full.\n")
	w("# TYPE kagura_store_publish_drops_total counter\n")
	w("kagura_store_publish_drops_total %d\n", m.StorePublishDrops)
	// Intent journal. Like the store families: unconditional, zeros when off.
	w("# HELP kagura_journal_enabled Intent journal configured and open (1 = yes).\n")
	w("# TYPE kagura_journal_enabled gauge\n")
	jEnabled := 0
	if m.JournalEnabled {
		jEnabled = 1
	}
	w("kagura_journal_enabled %d\n", jEnabled)
	w("# HELP kagura_journal_appends_total Records appended to the intent journal.\n")
	w("# TYPE kagura_journal_appends_total counter\n")
	w("kagura_journal_appends_total %d\n", m.Journal.Appends)
	w("# HELP kagura_journal_append_errors_total Journal appends refused or failed.\n")
	w("# TYPE kagura_journal_append_errors_total counter\n")
	w("kagura_journal_append_errors_total %d\n", m.Journal.AppendErrors)
	w("# HELP kagura_journal_rotations_total Journal segment compactions.\n")
	w("# TYPE kagura_journal_rotations_total counter\n")
	w("kagura_journal_rotations_total %d\n", m.Journal.Rotations)
	w("# HELP kagura_journal_corrupt_segments_total Journal segments quarantined as unreadable.\n")
	w("# TYPE kagura_journal_corrupt_segments_total counter\n")
	w("kagura_journal_corrupt_segments_total %d\n", m.Journal.CorruptSegments)
	w("# HELP kagura_journal_bytes Live journal segment size on disk.\n")
	w("# TYPE kagura_journal_bytes gauge\n")
	w("kagura_journal_bytes %d\n", m.Journal.SizeBytes)
	w("# HELP kagura_journal_pending_jobs Unsettled job intents in the journal fold.\n")
	w("# TYPE kagura_journal_pending_jobs gauge\n")
	w("kagura_journal_pending_jobs %d\n", m.Journal.PendingJobs)
	w("# HELP kagura_journal_replayed_jobs_total Jobs re-submitted from the journal at startup.\n")
	w("# TYPE kagura_journal_replayed_jobs_total counter\n")
	w("kagura_journal_replayed_jobs_total %d\n", m.JournalReplayedJobs)
	w("# HELP kagura_job_phase_seconds Job latency by phase.\n")
	w("# TYPE kagura_job_phase_seconds histogram\n")
	m.QueueSeconds.WritePrometheus(&b, "kagura_job_phase_seconds", `phase="queue"`)
	m.RunSeconds.WritePrometheus(&b, "kagura_job_phase_seconds", `phase="run"`)
	w("# HELP kagura_queue_depth_observed Queue depth sampled at each enqueue.\n")
	w("# TYPE kagura_queue_depth_observed histogram\n")
	m.QueueDepths.WritePrometheus(&b, "kagura_queue_depth_observed", "")
	w("# HELP kagura_queue_depth_sampled Queue depth sampled on a timer tick (time-weighted).\n")
	w("# TYPE kagura_queue_depth_sampled histogram\n")
	m.QueueDepthsSampled.WritePrometheus(&b, "kagura_queue_depth_sampled", "")
	w("# HELP kagura_result_bytes Estimated retained size of each cached result.\n")
	w("# TYPE kagura_result_bytes histogram\n")
	m.ResultBytes.WritePrometheus(&b, "kagura_result_bytes", "")
	w("# HELP kagura_warm_snapshot_bytes Encoded size of each warm-start snapshot.\n")
	w("# TYPE kagura_warm_snapshot_bytes histogram\n")
	m.SnapshotBytes.WritePrometheus(&b, "kagura_warm_snapshot_bytes", "")
	return b.String()
}
