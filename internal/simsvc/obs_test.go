package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kagura/internal/ehs"
	"kagura/internal/faultinject"
	"kagura/internal/obs"
)

// instantCompute returns a compute function that resolves immediately — the
// cheapest possible job, for cache-pressure soaks.
func instantCompute(res *ehs.Result) func(context.Context) (*ehs.Result, error) {
	return func(context.Context) (*ehs.Result, error) { return res, nil }
}

// TestCacheBoundUnderRacingSubmissions hammers a small cache from many
// goroutines with distinct keys and asserts the bound is never observably
// exceeded — eviction happens under the same lock as publication, so no
// snapshot may ever see more than CacheCapacity ready entries.
func TestCacheBoundUnderRacingSubmissions(t *testing.T) {
	const capacity = 16
	svc := newTestService(t, Options{Workers: 8, QueueDepth: 4096, CacheCapacity: capacity})
	errs := make(chan error, 8*64+1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				key := fmt.Sprintf("bound-%d-%d", g, i)
				if _, _, err := svc.Do(context.Background(), key, instantCompute(&ehs.Result{Completed: true})); err != nil {
					errs <- fmt.Errorf("key %s: %w", key, err)
					return
				}
				if n := svc.CacheLen(); n > capacity {
					errs <- fmt.Errorf("cache grew to %d entries, capacity %d", n, capacity)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.CachedKeys > capacity {
		t.Fatalf("CachedKeys = %d, capacity %d", m.CachedKeys, capacity)
	}
	if m.CacheEvictions == 0 {
		t.Error("512 distinct keys through a 16-entry cache recorded no evictions")
	}
	if m.CacheBytes < 0 {
		t.Errorf("CacheBytes went negative: %d", m.CacheBytes)
	}
}

// TestInFlightEntriesPinnedAgainstEviction checks the pinning invariant: an
// in-flight owner (with a coalesced waiter riding on it) must survive any
// amount of eviction pressure, because only ready entries are eviction
// candidates.
func TestInFlightEntriesPinnedAgainstEviction(t *testing.T) {
	svc := newTestService(t, Options{Workers: 4, QueueDepth: 1024, CacheCapacity: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	blocked := func(ctx context.Context) (*ehs.Result, error) {
		close(started)
		select {
		case <-release:
			return &ehs.Result{Completed: true, Committed: 7}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	owner, err := svc.submit(nil, "pinned", blocked, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waiter, err := svc.submit(nil, "pinned", nil, 0, 0, nil) // coalesces onto owner
	if err != nil {
		t.Fatal(err)
	}

	// Evict everything evictable, several times over.
	for i := 0; i < 5; i++ {
		if _, _, err := svc.Do(context.Background(), fmt.Sprintf("pressure-%d", i), instantCompute(&ehs.Result{Completed: true})); err != nil {
			t.Fatal(err)
		}
	}
	if m := svc.Metrics(); m.CacheEvictions < 4 {
		t.Fatalf("eviction pressure did not materialize: %d evictions", m.CacheEvictions)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := owner.Wait(ctx)
	if err != nil || res == nil || res.Committed != 7 {
		t.Fatalf("pinned owner lost its computation: res=%v err=%v", res, err)
	}
	wres, err := waiter.Wait(ctx)
	if err != nil || wres == nil || wres.Committed != 7 {
		t.Fatalf("coalesced waiter lost the pinned result: res=%v err=%v", wres, err)
	}
	if n := svc.CacheLen(); n > 1 {
		t.Fatalf("cache holds %d entries after publish, capacity 1", n)
	}
}

// TestEvictedResultRecomputesIdentical: evicting a result must be invisible
// except for the recompute — the simulator is deterministic, so the second
// computation is byte-identical to the first.
func TestEvictedResultRecomputesIdentical(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2, CacheCapacity: 1})
	ctx := context.Background()
	first, err := svc.Run(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	other := quickSpec()
	other.Kagura = false
	if _, err := svc.Run(ctx, other); err != nil { // evicts the first result
		t.Fatal(err)
	}
	second, err := svc.Run(ctx, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("evicted spec was served from cache")
	}
	fb, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, sb) {
		t.Fatalf("recomputed result diverged from the evicted one:\n%s\nvs\n%s", fb, sb)
	}
	if m := svc.Metrics(); m.CacheEvictions == 0 {
		t.Fatal("no eviction was recorded")
	}
}

// TestCacheSoak10kSpecsStaysBounded is the leak regression: 10k distinct
// specs through a bounded cache must hold resident entries at or under
// CacheCapacity throughout — before this bound existed, this soak retained
// all 10k results.
func TestCacheSoak10kSpecsStaysBounded(t *testing.T) {
	const capacity = 128
	svc := newTestService(t, Options{Workers: 8, QueueDepth: 8192, CacheCapacity: capacity})
	ctx := context.Background()
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("soak-%05d", i)
		if _, _, err := svc.Do(ctx, key, instantCompute(&ehs.Result{Completed: true})); err != nil {
			t.Fatal(err)
		}
		if i%997 == 0 {
			if n := svc.CacheLen(); n > capacity {
				t.Fatalf("after %d specs the cache holds %d entries, capacity %d", i+1, n, capacity)
			}
		}
	}
	if n := svc.CacheLen(); n > capacity {
		t.Fatalf("cache holds %d entries after the soak, capacity %d", n, capacity)
	}
	m := svc.Metrics()
	if want := int64(10_000 - capacity); m.CacheEvictions < want {
		t.Fatalf("CacheEvictions = %d, want ≥ %d", m.CacheEvictions, want)
	}
	if m.CacheBytes <= 0 {
		t.Fatalf("CacheBytes = %d after a soak that left %d resident results", m.CacheBytes, m.CachedKeys)
	}
}

// TestJobTraceSpanSumMatchesWallTime drives a job through the HTTP API and
// checks the acceptance bound: the phase spans on GET /v1/jobs/{id} sum to
// within 5% of the job's reported wall time (they are contiguous by
// construction, so this holds with margin to spare).
func TestJobTraceSpanSumMatchesWallTime(t *testing.T) {
	_, srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/run?async=1", quickSpec())
	st := decodeBody[JobStatus](t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		get, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		st = decodeBody[JobStatus](t, get)
	}

	if len(st.Trace) < 2 {
		t.Fatalf("expected queued+compute spans, got %+v", st.Trace)
	}
	if st.Trace[0].Phase != obs.PhaseQueued {
		t.Fatalf("first span is %q, want %q", st.Trace[0].Phase, obs.PhaseQueued)
	}
	var sum float64
	sawCompute := false
	for _, s := range st.Trace {
		sum += s.Seconds
		sawCompute = sawCompute || s.Phase == obs.PhaseCompute
	}
	if !sawCompute {
		t.Fatalf("no compute span in %+v", st.Trace)
	}
	wall := st.QueueSeconds + st.RunSeconds
	if wall <= 0 {
		t.Fatalf("job reports no wall time (queue=%g run=%g)", st.QueueSeconds, st.RunSeconds)
	}
	if diff := math.Abs(sum - wall); diff > 0.05*wall {
		t.Fatalf("trace spans sum to %.6fs, wall time %.6fs — more than 5%% apart: %+v", sum, wall, st.Trace)
	}
}

// TestTracePhasesAcrossRetries pins the exact phase/attempt sequence of a job
// that fails once and succeeds on retry.
func TestTracePhasesAcrossRetries(t *testing.T) {
	svc := newTestService(t, fastRetry(Options{Workers: 1, RetryMax: 2}))
	var attempts atomic.Int64
	flaky := func(ctx context.Context) (*ehs.Result, error) {
		if attempts.Add(1) == 1 {
			return nil, &faultinject.InjectedError{Point: "test", Occurrence: 1}
		}
		return &ehs.Result{Completed: true}, nil
	}
	job, err := svc.submit(nil, "trace-retry", flaky, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Job(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range st.Trace {
		got = append(got, fmt.Sprintf("%s/%d", s.Phase, s.Attempt))
	}
	want := []string{"queued/0", "compute/1", "backoff/1", "compute/2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("phase sequence = %v, want %v", got, want)
	}
}

// TestCachedJobTraceIsSingleInstantSpan: a cache hit's whole life is one
// zero-length cached span.
func TestCachedJobTraceIsSingleInstantSpan(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2})
	ctx := context.Background()
	if _, err := svc.Run(ctx, quickSpec()); err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Job(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) != 1 || st.Trace[0].Phase != obs.PhaseCached || st.Trace[0].Seconds != 0 {
		t.Fatalf("cache-hit trace = %+v, want one zero-length cached span", st.Trace)
	}
}

// TestWarmStartTracePhase: a forked job's compute attempt splits into a
// warm-start span (snapshot resolution) and the simulation proper.
func TestWarmStartTracePhase(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2})
	jobs, err := svc.SubmitBatchFork(sweepSpecs(), &ForkPoint{Cycles: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, job := range jobs {
		if _, err := job.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st, err := svc.Job(jobs[0].ID())
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	for _, s := range st.Trace {
		phases = append(phases, s.Phase)
	}
	sawWarm := false
	for i, p := range phases {
		if p == obs.PhaseWarmStart {
			sawWarm = true
			if i+1 >= len(phases) || phases[i+1] != obs.PhaseCompute {
				t.Fatalf("warm-start span not followed by compute: %v", phases)
			}
		}
	}
	if !sawWarm {
		t.Fatalf("no warm-start span in forked job trace: %v", phases)
	}
	if m := svc.Metrics(); m.SnapshotBytes.Count == 0 {
		t.Fatal("warm miss did not observe a snapshot size")
	}
}

// TestResponseWriteFaultDoesNotWedgeService arms the connection-level fault:
// a response write that dies mid-body must abort only that request — the jobs
// table stays intact, later requests succeed, and shutdown still drains.
func TestResponseWriteFaultDoesNotWedgeService(t *testing.T) {
	armChaos(t, faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Point: "simsvc.http.response", Kind: faultinject.KindError, Nth: 1, Message: "chaos: connection died"},
	}})
	svc, srv := newTestServer(t)

	blob, err := json.Marshal(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/run?async=1", "application/json", bytes.NewReader(blob))
	if err == nil {
		// The server aborted mid-body; draining must fail or come up short.
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if json.Valid(body) {
			t.Fatalf("aborted response delivered a complete body: %q", body)
		}
	}
	if faultinject.Fires("simsvc.http.response") != 1 {
		t.Fatal("response fault did not fire")
	}

	// The submission itself happened before the write: exactly one job, and
	// the server still answers.
	get, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("server wedged after mid-response abort: %v", err)
	}
	list := decodeBody[struct {
		Jobs []JobStatus `json:"jobs"`
	}](t, get)
	if len(list.Jobs) != 1 {
		t.Fatalf("jobs table corrupted: %d jobs, want 1", len(list.Jobs))
	}

	// The job completes and is queryable by ID.
	id := list.Jobs[0].ID
	deadline := time.Now().Add(60 * time.Second)
	for {
		get, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[JobStatus](t, get)
		if st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s after response fault", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Graceful shutdown is unaffected.
	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Close wedged after mid-response abort")
	}
}

// TestPrometheusExpositionValidates holds the full live exposition — counters,
// gauges, and the new histogram families — to the format contract the chaos
// soak enforces mid-flight.
func TestPrometheusExpositionValidates(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2, CacheCapacity: 2})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, _, err := svc.Do(ctx, fmt.Sprintf("expo-%d", i), instantCompute(&ehs.Result{Completed: true})); err != nil {
			t.Fatal(err)
		}
	}
	text := svc.Metrics().Prometheus()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("live exposition malformed: %v\n%s", err, text)
	}
}

// TestTracingOverheadSmoke bounds the instrumentation tax: a full per-job
// trace lifecycle (allocation, the span transitions of a retry-free job, one
// snapshot) must cost under 2% of even the quickest real job's wall time with
// logging off. Measured per-operation over many iterations so scheduler noise
// averages out; the real margin is ~three orders of magnitude.
func TestTracingOverheadSmoke(t *testing.T) {
	const iters = 20_000
	origin := time.Now()
	start := time.Now()
	for i := 0; i < iters; i++ {
		tr := obs.NewTrace(origin)
		tr.Begin(obs.PhaseQueued, origin)
		tr.BeginAttempt(1, obs.PhaseCompute, origin)
		tr.End(origin)
		if len(tr.Spans(origin)) != 2 {
			t.Fatal("unexpected span count")
		}
	}
	perJob := time.Since(start) / iters

	svc := newTestService(t, Options{Workers: 1})
	t0 := time.Now()
	if _, err := svc.Run(context.Background(), quickSpec()); err != nil {
		t.Fatal(err)
	}
	jobWall := time.Since(t0)

	if ratio := float64(perJob) / float64(jobWall); ratio > 0.02 {
		t.Fatalf("tracing lifecycle costs %v per job — %.3f%% of a quick job's %v; budget is 2%%",
			perJob, 100*ratio, jobWall)
	}
}
