package simsvc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"kagura/internal/cache"
	"kagura/internal/compress"
	"kagura/internal/ehs"
	"kagura/internal/kagura"
	"kagura/internal/powertrace"
	"kagura/internal/workload"
)

// RunSpec is the wire-level description of one simulation run: the job body
// of POST /v1/run, one element of POST /v1/batch, and the schema behind
// kagura-sim's -json flag. The zero value of every optional field selects the
// paper's default, so `{"app":"jpeg"}` is a complete spec.
type RunSpec struct {
	// App names a built-in workload (see GET /v1/workloads). Mutually
	// exclusive with Workload.
	App string `json:"app,omitempty"`
	// Workload is an inline custom application in the JSON schema of
	// workload.FromJSON (kagura-sim's -workload file format).
	Workload json.RawMessage `json:"workload,omitempty"`
	// Scale multiplies the workload length (default 1.0 ≈ 600k instructions).
	// Ignored for inline Workload definitions, which fix their own length.
	Scale float64 `json:"scale,omitempty"`
	// Trace names the ambient power source (default "RFHome").
	Trace string `json:"trace,omitempty"`
	// Seed selects the power-trace seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Codec enables cache compression ("" ⇒ compressor-free baseline).
	Codec string `json:"codec,omitempty"`
	// ACC gates compression behind the GCP predictor.
	ACC bool `json:"acc,omitempty"`
	// Kagura layers the intermittence-aware controller on top.
	Kagura bool `json:"kagura,omitempty"`
	// Policy is the R_thres adaptation policy (default "AIMD").
	Policy string `json:"policy,omitempty"`
	// Trigger is the Kagura trigger, "mem" or "voltage" (default "mem").
	Trigger string `json:"trigger,omitempty"`
	// IncreaseStep overrides the controller's additive increase fraction
	// when > 0 (default 0.10; §VIII-H5 sweeps 0.05–0.20). Requires Kagura.
	IncreaseStep float64 `json:"increaseStep,omitempty"`
	// CounterBits overrides the controller's confidence-counter width when
	// > 0 (default 2; Table IV sweeps 1–3). Requires Kagura.
	CounterBits int `json:"counterBits,omitempty"`
	// Design selects the crash-consistency architecture (default
	// "NVSRAMCache").
	Design string `json:"design,omitempty"`
	// DecayInterval enables EDBP cache decay when > 0 (cycles).
	DecayInterval int64 `json:"decayInterval,omitempty"`
	// Prefetch enables the IPEX-style next-line prefetcher.
	Prefetch bool `json:"prefetch,omitempty"`
	// CycleLog retains the per-power-cycle log in the result.
	CycleLog bool `json:"cycleLog,omitempty"`
	// MaxSimSeconds overrides the simulated-time safety cutoff (default 120).
	MaxSimSeconds float64 `json:"maxSimSeconds,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock execution (0 ⇒ the
	// service's default timeout). Not part of the cache identity.
	TimeoutSeconds float64 `json:"timeoutSeconds,omitempty"`
}

// Normalize validates the spec and returns a canonical copy: defaults
// applied, names rewritten to their canonical spelling, and inline workloads
// re-serialized deterministically. Two specs describing the same simulation
// normalize to identical values, which is what makes Key content-addressed.
func (sp RunSpec) Normalize() (RunSpec, error) {
	out := sp
	if sp.App == "" && len(sp.Workload) == 0 {
		return out, fmt.Errorf("simsvc: spec needs an app or an inline workload")
	}
	if sp.App != "" && len(sp.Workload) > 0 {
		return out, fmt.Errorf("simsvc: app and workload are mutually exclusive")
	}
	if out.Scale == 0 { //kagura:allow floateq exact zero marks "field unset" in the wire format
		out.Scale = 1
	}
	if out.Scale < 0 {
		return out, fmt.Errorf("simsvc: negative scale %g", out.Scale)
	}
	if out.Trace == "" {
		out.Trace = "RFHome"
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.MaxSimSeconds < 0 || out.TimeoutSeconds < 0 {
		return out, fmt.Errorf("simsvc: negative timeout")
	}

	if len(sp.Workload) > 0 {
		// Parse and re-serialize so formatting differences (whitespace, field
		// order the encoder normalizes) don't split the cache.
		app, err := workload.FromJSON(bytes.NewReader(sp.Workload))
		if err != nil {
			return out, fmt.Errorf("simsvc: inline workload: %w", err)
		}
		var buf bytes.Buffer
		if err := app.ToJSON(&buf); err != nil {
			return out, err
		}
		out.Workload = json.RawMessage(buf.Bytes())
		out.Scale = 1 // length is fixed by the definition
	} else if _, err := workload.ByName(sp.App, 0.01); err != nil {
		return out, fmt.Errorf("simsvc: %w", err)
	}

	trace, err := powertrace.ByName(out.Trace, out.Seed)
	if err != nil {
		return out, fmt.Errorf("simsvc: %w", err)
	}
	out.Trace = trace.Name

	if sp.Codec != "" {
		codec, err := compress.ByName(sp.Codec)
		if err != nil {
			return out, fmt.Errorf("simsvc: %w", err)
		}
		out.Codec = codec.Name()
	} else if sp.ACC {
		return out, fmt.Errorf("simsvc: acc requires a codec")
	}

	out.Design, err = canonicalDesign(sp.Design)
	if err != nil {
		return out, err
	}

	if sp.Kagura {
		if out.Policy == "" {
			out.Policy = "AIMD"
		}
		pol, err := kagura.PolicyByName(out.Policy)
		if err != nil {
			return out, fmt.Errorf("simsvc: %w", err)
		}
		out.Policy = pol.String()
		out.Trigger, err = canonicalTrigger(sp.Trigger)
		if err != nil {
			return out, err
		}
		if sp.IncreaseStep < 0 || sp.IncreaseStep >= 1 {
			return out, fmt.Errorf("simsvc: increase step %g outside [0,1)", sp.IncreaseStep)
		}
		if sp.CounterBits < 0 || sp.CounterBits > 8 {
			return out, fmt.Errorf("simsvc: counter bits %d outside 0..8", sp.CounterBits)
		}
	} else {
		if sp.Policy != "" || sp.Trigger != "" {
			return out, fmt.Errorf("simsvc: policy/trigger require kagura")
		}
		if sp.IncreaseStep > 0 || sp.CounterBits > 0 {
			return out, fmt.Errorf("simsvc: increaseStep/counterBits require kagura")
		}
		if sp.IncreaseStep < 0 || sp.CounterBits < 0 {
			return out, fmt.Errorf("simsvc: negative increaseStep/counterBits")
		}
	}
	if out.DecayInterval < 0 {
		return out, fmt.Errorf("simsvc: negative decay interval")
	}
	return out, nil
}

func canonicalDesign(name string) (string, error) {
	switch strings.ToLower(name) {
	case "", "nvsramcache":
		return ehs.NVSRAMCache.String(), nil
	case "nvmr":
		return ehs.NvMR.String(), nil
	case "sweepcache":
		return ehs.SweepCache.String(), nil
	}
	return "", fmt.Errorf("simsvc: unknown design %q", name)
}

func designByName(name string) ehs.Design {
	switch name {
	case ehs.NvMR.String():
		return ehs.NvMR
	case ehs.SweepCache.String():
		return ehs.SweepCache
	}
	return ehs.NVSRAMCache
}

func canonicalTrigger(name string) (string, error) {
	switch strings.ToLower(name) {
	case "", "mem", "memory":
		return "mem", nil
	case "vol", "voltage":
		return "voltage", nil
	}
	return "", fmt.Errorf("simsvc: unknown trigger %q", name)
}

// Key returns the spec's content-addressed cache key: a SHA-256 over the
// canonical form, excluding execution-control fields (TimeoutSeconds) that
// don't change what the simulation computes.
func (sp RunSpec) Key() (string, error) {
	norm, err := sp.Normalize()
	if err != nil {
		return "", err
	}
	norm.TimeoutSeconds = 0
	blob, err := json.Marshal(norm)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Config materializes the spec into a runnable simulator configuration.
func (sp RunSpec) Config() (ehs.Config, error) {
	norm, err := sp.Normalize()
	if err != nil {
		return ehs.Config{}, err
	}
	var app *workload.App
	if len(norm.Workload) > 0 {
		app, err = workload.FromJSON(bytes.NewReader(norm.Workload))
	} else {
		app, err = workload.ByName(norm.App, norm.Scale)
	}
	if err != nil {
		return ehs.Config{}, err
	}
	trace, err := powertrace.ByName(norm.Trace, norm.Seed)
	if err != nil {
		return ehs.Config{}, err
	}
	cfg := ehs.Default(app, trace)
	cfg.Design = designByName(norm.Design)
	if norm.Codec != "" {
		codec, err := compress.ByName(norm.Codec)
		if err != nil {
			return ehs.Config{}, err
		}
		cfg.Codec = codec
		cfg.UseACC = norm.ACC
	}
	if norm.Kagura {
		kcfg := kagura.DefaultConfig()
		pol, err := kagura.PolicyByName(norm.Policy)
		if err != nil {
			return ehs.Config{}, err
		}
		kcfg.Policy = pol
		if norm.Trigger == "voltage" {
			kcfg.Trigger = kagura.TriggerVoltage
		}
		if norm.IncreaseStep > 0 {
			kcfg.IncreaseStep = norm.IncreaseStep
		}
		if norm.CounterBits > 0 {
			kcfg.CounterBits = norm.CounterBits
		}
		cfg.Kagura = &kcfg
	}
	cfg.DecayInterval = norm.DecayInterval
	cfg.Prefetch = norm.Prefetch
	cfg.CollectCycleLog = norm.CycleLog
	if norm.MaxSimSeconds > 0 {
		cfg.MaxSimSeconds = norm.MaxSimSeconds
	}
	return cfg, nil
}

// ConfigKey returns a content-addressed cache key for an arbitrary simulator
// configuration: a SHA-256 over every behavior-determining input — the full
// workload definition, the power trace samples, and all architectural
// parameters. Two configs with equal keys produce byte-identical results
// (runs are deterministic), which is what lets the service memoize across
// clients that build configs programmatically rather than via RunSpec. The
// hashing itself lives on ehs.Config so the checkpoint subsystem can stamp
// snapshots with the same identity.
func ConfigKey(cfg ehs.Config) string {
	return cfg.Fingerprint()
}

// EnergyJSON is the wire form of the six-way energy breakdown, in joules.
type EnergyJSON struct {
	Compress   float64 `json:"compress"`
	Decompress float64 `json:"decompress"`
	CacheOther float64 `json:"cacheOther"`
	Memory     float64 `json:"memory"`
	Checkpoint float64 `json:"checkpoint"`
	Others     float64 `json:"others"`
	Total      float64 `json:"total"`
}

// CacheJSON is the wire form of one cache's event counters.
type CacheJSON struct {
	Accesses       int64   `json:"accesses"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	MissRate       float64 `json:"missRate"`
	Compressions   int64   `json:"compressions"`
	Decompressions int64   `json:"decompressions"`
	Evictions      int64   `json:"evictions"`
	ShadowHits     int64   `json:"shadowHits"`
}

// CycleJSON is the wire form of one power-cycle record.
type CycleJSON struct {
	Committed int64   `json:"committed"`
	Loads     int64   `json:"loads"`
	Stores    int64   `json:"stores"`
	Cycles    int64   `json:"cycles"`
	CPI       float64 `json:"cpi"`
}

// Comparison reports a run against the compressor-free baseline (kagura-sim
// -compare -json).
type Comparison struct {
	Speedup         float64 `json:"speedup"`
	EnergyReduction float64 `json:"energyReduction"`
}

// RunResult is the JSON result schema shared by the HTTP API and kagura-sim
// -json.
type RunResult struct {
	Spec   *RunSpec `json:"spec,omitempty"`
	Key    string   `json:"key,omitempty"`
	Cached bool     `json:"cached,omitempty"`
	// WarmStartFromCycle records warm-start provenance: the base-run cycle
	// this job's simulation resumed from (0 for cold runs).
	WarmStartFromCycle int64 `json:"warmStartFromCycle,omitempty"`

	Completed            bool        `json:"completed"`
	ExecSeconds          float64     `json:"execSeconds"`
	Committed            int64       `json:"committed"`
	Executed             int64       `json:"executed"`
	PowerCycles          int64       `json:"powerCycles"`
	AvgCommittedPerCycle float64     `json:"avgCommittedPerCycle"`
	Energy               EnergyJSON  `json:"energy"`
	ICache               CacheJSON   `json:"icache"`
	DCache               CacheJSON   `json:"dcache"`
	Compressions         int64       `json:"compressions"`
	Decompressions       int64       `json:"decompressions"`
	KaguraRMEntries      int64       `json:"kaguraRMEntries,omitempty"`
	Prefetches           int64       `json:"prefetches,omitempty"`
	CheckpointedBlocks   int64       `json:"checkpointedBlocks,omitempty"`
	Cycles               []CycleJSON `json:"cycles,omitempty"`

	VsBaseline *Comparison `json:"vsBaseline,omitempty"`
}

// NewRunResult converts a simulator result into the wire schema. spec may be
// nil for programmatic jobs.
func NewRunResult(spec *RunSpec, key string, cached bool, res *ehs.Result) *RunResult {
	out := &RunResult{
		Spec:                 spec,
		Key:                  key,
		Cached:               cached,
		Completed:            res.Completed,
		ExecSeconds:          res.ExecSeconds,
		Committed:            res.Committed,
		Executed:             res.Executed,
		PowerCycles:          res.PowerCycles,
		AvgCommittedPerCycle: res.AvgCommittedPerCycle(),
		Energy: EnergyJSON{
			Compress:   res.Energy.Compress,
			Decompress: res.Energy.Decompress,
			CacheOther: res.Energy.CacheOther,
			Memory:     res.Energy.Memory,
			Checkpoint: res.Energy.Checkpoint,
			Others:     res.Energy.Others,
			Total:      res.Energy.Total(),
		},
		ICache:             cacheJSON(res.ICache),
		DCache:             cacheJSON(res.DCache),
		Compressions:       res.Compressions,
		Decompressions:     res.Decompressions,
		KaguraRMEntries:    res.KaguraRMEntries,
		Prefetches:         res.Prefetches,
		CheckpointedBlocks: res.CheckpointedBlocks,
	}
	for _, c := range res.Cycles {
		out.Cycles = append(out.Cycles, CycleJSON{
			Committed: c.Committed, Loads: c.Loads, Stores: c.Stores,
			Cycles: c.Cycles, CPI: c.CPI(),
		})
	}
	return out
}

func cacheJSON(s cache.Stats) CacheJSON {
	return CacheJSON{
		Accesses:       s.Accesses,
		Hits:           s.Hits,
		Misses:         s.Misses,
		MissRate:       s.MissRate(),
		Compressions:   s.Compressions,
		Decompressions: s.Decompressions,
		Evictions:      s.Evictions,
		ShadowHits:     s.ShadowHits,
	}
}
