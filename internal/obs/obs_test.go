package obs

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

// at returns a fixed base time plus an offset — traces are exercised with
// synthetic clocks, never the host's.
func at(ms int) time.Time {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(ms) * time.Millisecond)
}

func TestTraceContiguousSpans(t *testing.T) {
	tr := NewTrace(at(0))
	tr.Begin(PhaseQueued, at(0))
	tr.BeginAttempt(1, PhaseCompute, at(10))
	tr.Begin(PhaseBackoff, at(30))
	tr.BeginAttempt(2, PhaseCompute, at(50))
	tr.End(at(90))

	spans := tr.Spans(at(90))
	want := []Span{
		{Phase: PhaseQueued, Attempt: 0, StartSeconds: 0, Seconds: 0.010},
		{Phase: PhaseCompute, Attempt: 1, StartSeconds: 0.010, Seconds: 0.020},
		{Phase: PhaseBackoff, Attempt: 1, StartSeconds: 0.030, Seconds: 0.020},
		{Phase: PhaseCompute, Attempt: 2, StartSeconds: 0.050, Seconds: 0.040},
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(want), spans)
	}
	var sum float64
	for i, s := range spans {
		if s.Phase != want[i].Phase || s.Attempt != want[i].Attempt {
			t.Errorf("span %d = %+v, want %+v", i, s, want[i])
		}
		if math.Abs(s.StartSeconds-want[i].StartSeconds) > 1e-9 || math.Abs(s.Seconds-want[i].Seconds) > 1e-9 {
			t.Errorf("span %d timing = %+v, want %+v", i, s, want[i])
		}
		sum += s.Seconds
	}
	// Contiguity: span durations sum to exactly last-end minus origin.
	if math.Abs(sum-0.090) > 1e-9 {
		t.Errorf("span sum %.6f, want 0.090", sum)
	}
}

func TestTraceOpenSpanExtendsToNow(t *testing.T) {
	tr := NewTrace(at(0))
	tr.Begin(PhaseQueued, at(0))
	spans := tr.Spans(at(25))
	if len(spans) != 1 || math.Abs(spans[0].Seconds-0.025) > 1e-9 {
		t.Fatalf("open span not extended: %+v", spans)
	}
	// The snapshot must not have closed the span.
	spans = tr.Spans(at(40))
	if len(spans) != 1 || math.Abs(spans[0].Seconds-0.040) > 1e-9 {
		t.Fatalf("snapshot closed the open span: %+v", spans)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Begin(PhaseQueued, at(0))
	tr.BeginAttempt(1, PhaseCompute, at(1))
	tr.End(at(2))
	if spans := tr.Spans(at(3)); spans != nil {
		t.Fatalf("nil trace returned spans: %+v", spans)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom on bare context = %v, want nil", got)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace(at(0))
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 25)
	for _, v := range []float64{0.5, 1, 3, 5, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper bounds are inclusive (Prometheus le semantics).
	wantCounts := []uint64{2, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 || math.Abs(s.Sum-116.5) > 1e-9 {
		t.Errorf("count=%d sum=%g, want 6 / 116.5", s.Count, s.Sum)
	}
}

func TestHistogramPrometheusRender(t *testing.T) {
	h := NewHistogram(1, 5)
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(50)
	var b strings.Builder
	h.Snapshot().WritePrometheus(&b, "x_seconds", `phase="run"`)
	want := `x_seconds_bucket{phase="run",le="1"} 1
x_seconds_bucket{phase="run",le="5"} 2
x_seconds_bucket{phase="run",le="+Inf"} 3
x_seconds_sum{phase="run"} 53.5
x_seconds_count{phase="run"} 3
`
	if b.String() != want {
		t.Fatalf("render:\n%s\nwant:\n%s", b.String(), want)
	}

	// Byte stability: rendering the same snapshot twice is identical.
	var b2 strings.Builder
	h.Snapshot().WritePrometheus(&b2, "x_seconds", `phase="run"`)
	if b.String() != b2.String() {
		t.Fatal("histogram rendering is not byte-stable")
	}
}

func TestValidateExpositionAcceptsWellFormed(t *testing.T) {
	good := `# HELP kagura_jobs_total Jobs.
# TYPE kagura_jobs_total counter
kagura_jobs_total{status="run"} 3
# HELP kagura_queue_depth Depth.
# TYPE kagura_queue_depth gauge
kagura_queue_depth 0
# HELP x_seconds Latency.
# TYPE x_seconds histogram
x_seconds_bucket{phase="run",le="1"} 1
x_seconds_bucket{phase="run",le="+Inf"} 3
x_seconds_sum{phase="run"} 53.5
x_seconds_count{phase="run"} 3
`
	if err := ValidateExposition(good); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "kagura_x 1\n",
		"bad value":          "# TYPE x counter\nx one\n",
		"bad name":           "# TYPE x counter\nx{a=\"b\"} 1\n9bad 2\n",
		"unterminated label": "# TYPE x counter\nx{a=\"b 1\n",
		"duplicate TYPE":     "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"bucket no le":       "# TYPE h histogram\nh_bucket{a=\"b\"} 1\n",
		"no inf bucket":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"cumulative decrease": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: malformed exposition accepted:\n%s", name, text)
		}
	}
}
