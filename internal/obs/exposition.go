package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-exposition payload (the body of
// GET /metrics) against the format contract the service promises scrapers:
//
//   - every line is a well-formed HELP/TYPE comment or a sample line
//     (`name{label="value",…} value`) with valid metric and label names;
//   - every sample belongs to a family with a declared TYPE, and no family
//     declares its TYPE twice;
//   - histogram families are internally consistent: _bucket samples carry an
//     le label with strictly increasing bounds, cumulative counts never
//     decrease, every label set ends with an le="+Inf" bucket, and the
//     family's _count equals its +Inf bucket.
//
// The chaos soak scrapes /metrics mid-flight and feeds it here, so a
// malformed exposition — a counter rendered from an unstable map walk, a
// histogram whose buckets regressed — fails the soak instead of silently
// breaking dashboards.
func ValidateExposition(text string) error {
	v := &expoValidator{types: map[string]string{}, hists: map[string]*histRun{}}
	for i, line := range strings.Split(text, "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("obs: exposition line %d: %w (%q)", i+1, err, line)
		}
	}
	// Every histogram label set must have been sealed with +Inf and matched
	// by a _count. hKeys preserves first-seen order, so the walk (and any
	// error it produces) is deterministic.
	for _, k := range v.hKeys {
		h := v.hists[k]
		if !h.sawInf {
			return fmt.Errorf("obs: exposition: histogram series %s has no le=\"+Inf\" bucket", k)
		}
		if !h.sawCount {
			return fmt.Errorf("obs: exposition: histogram series %s has no _count sample", k)
		}
	}
	return nil
}

// histRun tracks one histogram label set's bucket stream.
type histRun struct {
	lastLE   float64
	lastCum  uint64
	any      bool
	sawInf   bool
	infCount uint64
	sawCount bool
}

type expoValidator struct {
	types map[string]string
	hists map[string]*histRun
	hKeys []string
}

func (v *expoValidator) line(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *expoValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment")
	}
	switch fields[1] {
	case "HELP":
		if !validMetricName(fields[2]) {
			return fmt.Errorf("invalid metric name %q in HELP", fields[2])
		}
	case "TYPE":
		if !validMetricName(fields[2]) {
			return fmt.Errorf("invalid metric name %q in TYPE", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE needs a type")
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q", fields[3])
		}
		if _, dup := v.types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		v.types[fields[2]] = fields[3]
	default:
		return fmt.Errorf("comment is neither HELP nor TYPE")
	}
	return nil
}

func (v *expoValidator) sample(line string) error {
	name, labels, value, err := parseSample(line)
	if err != nil {
		return err
	}
	// Resolve the family: a histogram's _bucket/_sum/_count samples belong to
	// the base name's TYPE declaration.
	base, part := name, ""
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name && v.types[trimmed] == "histogram" {
			base, part = trimmed, suffix
			break
		}
	}
	typ, ok := v.types[base]
	if !ok {
		return fmt.Errorf("sample %s has no TYPE declaration", name)
	}
	if typ != "histogram" {
		return nil
	}
	key := base + "{" + labelsKey(labels, "le") + "}"
	switch part {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram bucket without le label")
		}
		bound, err := parseLE(le)
		if err != nil {
			return err
		}
		cum := uint64(value)
		if value < 0 || float64(cum) != value { //kagura:allow floateq exact round-trip check: bucket counts must be integers
			return fmt.Errorf("bucket count %g is not a non-negative integer", value)
		}
		h := v.hists[key]
		if h == nil {
			h = &histRun{}
			v.hists[key] = h
			v.hKeys = append(v.hKeys, key)
		}
		if h.sawInf {
			return fmt.Errorf("bucket after le=\"+Inf\" in %s", key)
		}
		if h.any && bound <= h.lastLE {
			return fmt.Errorf("bucket bounds not increasing in %s (%g after %g)", key, bound, h.lastLE)
		}
		if h.any && cum < h.lastCum {
			return fmt.Errorf("cumulative bucket count decreased in %s (%d after %d)", key, cum, h.lastCum)
		}
		h.any, h.lastLE, h.lastCum = true, bound, cum
		if math.IsInf(bound, +1) {
			h.sawInf, h.infCount = true, cum
		}
	case "_count":
		h := v.hists[key]
		if h == nil || !h.sawInf {
			return fmt.Errorf("histogram _count before its +Inf bucket in %s", key)
		}
		if uint64(value) != h.infCount || float64(uint64(value)) != value { //kagura:allow floateq exact integer equality is the histogram invariant
			return fmt.Errorf("histogram _count %g disagrees with +Inf bucket %d in %s", value, h.infCount, key)
		}
		h.sawCount = true
	case "_sum":
		// Any float is a legal sum.
	default:
		return fmt.Errorf("bare sample %s in histogram family %s", name, base)
	}
	return nil
}

// parseSample splits `name{k="v",…} value` (labels optional).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample")
	}
	name = rest[:end]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]
	labels = map[string]string{}
	if rest[0] == '{' {
		rest, err = parseLabels(rest[1:], labels)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("malformed value %q", rest)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("malformed value %q", rest)
	}
	return name, labels, value, nil
}

// parseLabels consumes `k="v",…}` and returns what follows the brace.
func parseLabels(rest string, labels map[string]string) (string, error) {
	for {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return "", fmt.Errorf("malformed label pair")
		}
		key := rest[:eq]
		if !validLabelName(key) {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", fmt.Errorf("unquoted label value")
		}
		val, n, err := scanQuoted(rest)
		if err != nil {
			return "", err
		}
		labels[key] = val
		rest = rest[n:]
		switch {
		case strings.HasPrefix(rest, ","):
			rest = rest[1:]
		case strings.HasPrefix(rest, "}"):
			return rest[1:], nil
		default:
			return "", fmt.Errorf("malformed label list")
		}
	}
}

// scanQuoted reads a double-quoted string with \" \\ \n escapes, returning
// the decoded value and the bytes consumed.
func scanQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(+1), nil
	}
	bound, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("unparsable le %q", le)
	}
	return bound, nil
}

// labelsKey renders a label set minus one key, in a canonical order, for use
// as a histogram-series identity.
func labelsKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
