package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket histogram: observation counts per upper bound
// plus a running sum. Buckets are fixed at construction — never adaptive —
// so two snapshots of the same state render byte-identically and series
// stay comparable across process restarts (DESIGN.md §11).
//
// Histogram itself is NOT synchronized: the owner serializes Observe and
// Snapshot (simsvc guards its histograms with the service mutex, which it
// already holds at every observation site).
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	count  uint64
	sum    float64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// The bounds are copied and sorted defensively; an implicit +Inf bucket is
// always present, so NewHistogram() is a valid count/sum-only histogram.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Snapshot returns a deep copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, in per-bucket
// (non-cumulative) form.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds (+Inf implied).
	Bounds []float64 `json:"bounds,omitempty"`
	// Counts holds one entry per bound plus the +Inf overflow bucket.
	Counts []uint64 `json:"counts,omitempty"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
}

// WritePrometheus renders the snapshot as a Prometheus histogram family:
// cumulative <name>_bucket lines with le labels, then <name>_sum and
// <name>_count. labels is either empty or a rendered label list such as
// `phase="queue"` that is merged before the le label. The caller emits the
// HELP/TYPE header (once per family, even when several label sets share it).
func (s HistogramSnapshot) WritePrometheus(b *strings.Builder, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n", name, s.Sum)
		fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, s.Sum)
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// formatBound renders a bucket bound the way Prometheus clients do: shortest
// round-trip representation, stable for the fixed bounds used here.
func formatBound(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}
