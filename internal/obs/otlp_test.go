package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"
	"time"
)

// otlpTestTrace builds a three-phase trace (queued → store → compute) with
// exact second boundaries off a fixed origin.
func otlpTestTrace(origin time.Time) *Trace {
	tr := NewTrace(origin)
	tr.Begin(PhaseQueued, origin)
	tr.Begin(PhaseStore, origin.Add(1*time.Second))
	tr.BeginAttempt(1, PhaseCompute, origin.Add(2*time.Second))
	tr.End(origin.Add(5 * time.Second))
	return tr
}

func TestMarshalOTLPShape(t *testing.T) {
	origin := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	blob, err := otlpTestTrace(origin).MarshalOTLP("kagura-simsvc", "job-000001", origin.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					Name              string `json:"name"`
					Kind              int    `json:"kind"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					EndTimeUnixNano   string `json:"endTimeUnixNano"`
					Attributes        []struct {
						Key   string `json:"key"`
						Value struct {
							IntValue string `json:"intValue"`
						} `json:"value"`
					} `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(blob, &req); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(req.ResourceSpans) != 1 || len(req.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("want exactly one resource with one scope, got %s", blob)
	}
	res := req.ResourceSpans[0]
	if got := res.Resource.Attributes; len(got) != 1 || got[0].Key != "service.name" || got[0].Value.StringValue != "kagura-simsvc" {
		t.Fatalf("resource attributes = %+v, want service.name", got)
	}
	if res.ScopeSpans[0].Scope.Name != "kagura/obs" {
		t.Fatalf("scope name = %q", res.ScopeSpans[0].Scope.Name)
	}

	spans := res.ScopeSpans[0].Spans
	if len(spans) != 3 {
		t.Fatalf("span count = %d, want 3", len(spans))
	}
	wantNames := []string{PhaseQueued, PhaseStore, PhaseCompute}
	seenSpanIDs := map[string]bool{}
	for i, sp := range spans {
		if sp.Name != wantNames[i] {
			t.Errorf("span[%d].name = %q, want %q", i, sp.Name, wantNames[i])
		}
		if sp.Kind != otlpSpanKindInternal {
			t.Errorf("span[%d].kind = %d, want %d", i, sp.Kind, otlpSpanKindInternal)
		}
		if len(sp.TraceID) != 32 {
			t.Errorf("span[%d].traceId = %q, want 32 hex chars", i, sp.TraceID)
		}
		if sp.TraceID != spans[0].TraceID {
			t.Errorf("span[%d] has a different traceId", i)
		}
		if len(sp.SpanID) != 16 {
			t.Errorf("span[%d].spanId = %q, want 16 hex chars", i, sp.SpanID)
		}
		if seenSpanIDs[sp.SpanID] {
			t.Errorf("span[%d] repeats spanId %q", i, sp.SpanID)
		}
		seenSpanIDs[sp.SpanID] = true
		start, err := strconv.ParseInt(sp.StartTimeUnixNano, 10, 64)
		if err != nil {
			t.Fatalf("span[%d] start: %v", i, err)
		}
		end, err := strconv.ParseInt(sp.EndTimeUnixNano, 10, 64)
		if err != nil {
			t.Fatalf("span[%d] end: %v", i, err)
		}
		wantStart := origin.Add(time.Duration(i) * time.Second).UnixNano()
		if start != wantStart {
			t.Errorf("span[%d] starts at %d, want %d", i, start, wantStart)
		}
		if end < start {
			t.Errorf("span[%d] ends before it starts", i)
		}
	}
	// The last span covers seconds 2..5 and carries the attempt attribute.
	last := spans[2]
	if got := origin.Add(5 * time.Second).UnixNano(); last.EndTimeUnixNano != strconv.FormatInt(got, 10) {
		t.Errorf("compute span end = %s, want %d", last.EndTimeUnixNano, got)
	}
	if len(last.Attributes) != 1 || last.Attributes[0].Key != "kagura.attempt" || last.Attributes[0].Value.IntValue != "1" {
		t.Errorf("compute span attributes = %+v, want kagura.attempt=1", last.Attributes)
	}
	// Phases outside any attempt carry no attempt attribute.
	if len(spans[0].Attributes) != 0 {
		t.Errorf("queued span attributes = %+v, want none", spans[0].Attributes)
	}
}

func TestMarshalOTLPDeterministic(t *testing.T) {
	origin := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	now := origin.Add(5 * time.Second)
	a, err := otlpTestTrace(origin).MarshalOTLP("svc", "job-1", now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := otlpTestTrace(origin).MarshalOTLP("svc", "job-1", now)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal traces marshal to different bytes")
	}
	// A different job yields a different trace identity.
	c, err := otlpTestTrace(origin).MarshalOTLP("svc", "job-2", now)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different jobs marshal to the same trace identity")
	}
}

func TestMarshalOTLPNilAndEmpty(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	var nilTrace *Trace
	blob, err := nilTrace.MarshalOTLP("svc", "job", now)
	if err != nil {
		t.Fatalf("nil trace: %v", err)
	}
	var req map[string]any
	if err := json.Unmarshal(blob, &req); err != nil {
		t.Fatalf("nil trace export is not valid JSON: %v", err)
	}
	blob, err = NewTrace(now).MarshalOTLP("svc", "job", now)
	if err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	if err := json.Unmarshal(blob, &req); err != nil {
		t.Fatalf("empty trace export is not valid JSON: %v", err)
	}
}
