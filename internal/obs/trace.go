// Package obs holds the observability primitives the serving stack is
// instrumented with: per-job phase traces, fixed-bucket histograms, and a
// Prometheus text-exposition validator.
//
// The package is deliberately clock-free: every timestamp is passed in by the
// caller, and nothing here reads the host clock, spawns goroutines, or draws
// randomness. That keeps obs inside the simdeterminism lint's core-package
// set — the service layer (simsvc, cmd/…) owns all wall-clock reads, and obs
// only does arithmetic on the times it is handed. The same property makes
// every rendering byte-stable: the same snapshot always formats to the same
// bytes (DESIGN.md §11).
package obs

import (
	"context"
	"sync"
	"time"
)

// The phase vocabulary of a job trace. One span per contiguous stretch of a
// job's life; phases never overlap, so the span durations sum to the job's
// wall time.
const (
	// PhaseQueued: submitted and waiting for a worker.
	PhaseQueued = "queued"
	// PhaseCoalesced: riding along on an identical in-flight job.
	PhaseCoalesced = "coalesced"
	// PhaseCached: resolved instantly from the result cache.
	PhaseCached = "cached"
	// PhaseWarmStart: computing or waiting for a warm-start snapshot.
	PhaseWarmStart = "warmstart"
	// PhaseStore: probing the persistent on-disk store before computing.
	PhaseStore = "store"
	// PhaseCompute: executing the simulation (one span per attempt).
	PhaseCompute = "compute"
	// PhaseBackoff: waiting out the retry backoff after a transient failure.
	PhaseBackoff = "backoff"
)

// Span is one closed phase interval of a job trace, in seconds relative to
// the trace origin (the job's creation).
type Span struct {
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// Attempt is the 1-based compute attempt the span belongs to; 0 for
	// phases outside any attempt (queued, coalesced, cached).
	Attempt int `json:"attempt,omitempty"`
	// StartSeconds is the span's offset from the trace origin.
	StartSeconds float64 `json:"startSeconds"`
	// Seconds is the span's duration.
	Seconds float64 `json:"seconds"`
}

// span is the internal representation: absolute times, converted to offsets
// only when snapshotted.
type span struct {
	phase      string
	attempt    int
	start, end time.Time
}

// Trace records the phase timeline of one job. Begin/End/Spans are safe for
// concurrent use; a nil *Trace is a valid no-op receiver, so instrumentation
// sites never need nil checks. Spans are contiguous by construction — Begin
// closes the open span at the same instant it opens the next — so the sum of
// span durations equals last-end minus origin exactly.
type Trace struct {
	mu      sync.Mutex
	origin  time.Time
	closed  []span
	open    bool
	cur     span
	attempt int
}

// NewTrace starts an empty trace with the given origin (the job's creation
// time). No span is open until the first Begin.
func NewTrace(origin time.Time) *Trace {
	return &Trace{origin: origin}
}

// Begin closes the open span (if any) at now and opens a new one in the
// given phase, stamped with the current attempt number.
func (t *Trace) Begin(phase string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.beginLocked(phase, now)
	t.mu.Unlock()
}

// BeginAttempt sets the current attempt number and begins a span — the
// worker's entry point for each compute attempt.
func (t *Trace) BeginAttempt(attempt int, phase string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attempt = attempt
	t.beginLocked(phase, now)
	t.mu.Unlock()
}

func (t *Trace) beginLocked(phase string, now time.Time) {
	if t.open {
		t.cur.end = now
		t.closed = append(t.closed, t.cur)
	}
	t.cur = span{phase: phase, attempt: t.attempt, start: now}
	t.open = true
}

// End closes the open span at now. A trace with no open span is unchanged.
func (t *Trace) End(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.open {
		t.cur.end = now
		t.closed = append(t.closed, t.cur)
		t.open = false
	}
	t.mu.Unlock()
}

// Spans returns the trace as wire-level spans. An open span is reported as
// running through now without being closed, so snapshots of a live job see
// its current phase with an up-to-date duration.
func (t *Trace) Spans(now time.Time) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.closed)+1)
	for _, s := range t.closed {
		out = append(out, t.wire(s))
	}
	if t.open {
		s := t.cur
		s.end = now
		out = append(out, t.wire(s))
	}
	return out
}

func (t *Trace) wire(s span) Span {
	return Span{
		Phase:        s.phase,
		Attempt:      s.attempt,
		StartSeconds: s.start.Sub(t.origin).Seconds(),
		Seconds:      s.end.Sub(s.start).Seconds(),
	}
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// WithTrace returns a context carrying t, so instrumentation deep inside a
// compute path (warm-start snapshots) can extend the job's trace without
// threading it through every signature.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil (a valid no-op Trace) when
// none is attached.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
