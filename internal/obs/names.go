package obs

import "strings"

// The metric-name catalog: every kagura_* family the service exposes on
// /metrics, as named constants. Dashboards, alerts, and recording rules key
// off these strings, so a rename must be a reviewed diff here — the
// metricstable analyzer (internal/lint) rejects any kagura_* literal
// elsewhere in the module that is not one of these values, bans names built
// with format verbs, and flags catalog entries no package renders.
//
// Grouped the way Metrics.Prometheus renders them; keep names lowercase
// with single underscores (the analyzer checks the shape too).
const (
	// Service throughput and occupancy.
	MetricJobsTotal  = "kagura_jobs_total"
	MetricQueueDepth = "kagura_queue_depth"
	MetricWorkers    = "kagura_workers"
	MetricCachedKeys = "kagura_cached_keys"

	// Stage timings.
	MetricStageSecondsTotal = "kagura_stage_seconds_total"
	MetricStageSamplesTotal = "kagura_stage_samples_total"

	// Warm-start snapshot cache.
	MetricWarmStartTotal       = "kagura_warm_start_total"
	MetricWarmSnapshots        = "kagura_warm_snapshots"
	MetricWarmCyclesSavedTotal = "kagura_warm_cycles_saved_total"
	MetricWarmSnapshotBytes    = "kagura_warm_snapshot_bytes"

	// Resilience: retries, shedding, degradation, classified errors.
	MetricPanicsRecoveredTotal = "kagura_panics_recovered_total"
	MetricJobsRetriedTotal     = "kagura_jobs_retried_total"
	MetricJobsShedTotal        = "kagura_jobs_shed_total"
	MetricDegradedRuns         = "kagura_degraded_runs"
	MetricShedding             = "kagura_shedding"
	MetricErrorsTotal          = "kagura_errors_total"

	// In-memory result cache.
	MetricCacheBytes          = "kagura_cache_bytes"
	MetricCacheCapacity       = "kagura_cache_capacity"
	MetricCacheEvictionsTotal = "kagura_cache_evictions_total"

	// Persistent on-disk store.
	MetricStoreEnabled           = "kagura_store_enabled"
	MetricStoreHitsTotal         = "kagura_store_hits_total"
	MetricStoreMissesTotal       = "kagura_store_misses_total"
	MetricStoreEntries           = "kagura_store_entries"
	MetricStoreBytes             = "kagura_store_bytes"
	MetricStoreWritesTotal       = "kagura_store_writes_total"
	MetricStoreWriteErrorsTotal  = "kagura_store_write_errors_total"
	MetricStoreEvictionsTotal    = "kagura_store_evictions_total"
	MetricStoreCorruptTotal      = "kagura_store_corrupt_entries_total"
	MetricStorePublishDropsTotal = "kagura_store_publish_drops_total"

	// Durable intent journal (internal/journal).
	MetricJournalEnabled              = "kagura_journal_enabled"
	MetricJournalAppendsTotal         = "kagura_journal_appends_total"
	MetricJournalAppendErrorsTotal    = "kagura_journal_append_errors_total"
	MetricJournalRotationsTotal       = "kagura_journal_rotations_total"
	MetricJournalCorruptSegmentsTotal = "kagura_journal_corrupt_segments_total"
	MetricJournalBytes                = "kagura_journal_bytes"
	MetricJournalPendingJobs          = "kagura_journal_pending_jobs"
	MetricJournalReplayedJobsTotal    = "kagura_journal_replayed_jobs_total"

	// Histograms.
	MetricJobPhaseSeconds    = "kagura_job_phase_seconds"
	MetricQueueDepthObserved = "kagura_queue_depth_observed"
	MetricQueueDepthSampled  = "kagura_queue_depth_sampled"
	MetricResultBytes        = "kagura_result_bytes"

	// Campaign engine (internal/campaign). The kagura_campaign prefix is the
	// family split tests key on: these render from the campaign exposition,
	// everything above from the simsvc exposition.
	MetricCampaignsTotal          = "kagura_campaigns_total"
	MetricCampaignRunning         = "kagura_campaign_running"
	MetricCampaignPointsSubmitted = "kagura_campaign_points_submitted_total"
	MetricCampaignRoundsTotal     = "kagura_campaign_rounds_total"
	MetricCampaignDispatchRetries = "kagura_campaign_dispatch_retries_total"
	MetricCampaignExportsTotal    = "kagura_campaign_exports_total"
	MetricCampaignResumedTotal    = "kagura_campaign_resumed_total"
)

// KnownMetricNames returns every catalogued family name, in declaration
// order. Tests assert the exposition renders exactly this set.
func KnownMetricNames() []string {
	return []string{
		MetricJobsTotal,
		MetricQueueDepth,
		MetricWorkers,
		MetricCachedKeys,
		MetricStageSecondsTotal,
		MetricStageSamplesTotal,
		MetricWarmStartTotal,
		MetricWarmSnapshots,
		MetricWarmCyclesSavedTotal,
		MetricWarmSnapshotBytes,
		MetricPanicsRecoveredTotal,
		MetricJobsRetriedTotal,
		MetricJobsShedTotal,
		MetricDegradedRuns,
		MetricShedding,
		MetricErrorsTotal,
		MetricCacheBytes,
		MetricCacheCapacity,
		MetricCacheEvictionsTotal,
		MetricStoreEnabled,
		MetricStoreHitsTotal,
		MetricStoreMissesTotal,
		MetricStoreEntries,
		MetricStoreBytes,
		MetricStoreWritesTotal,
		MetricStoreWriteErrorsTotal,
		MetricStoreEvictionsTotal,
		MetricStoreCorruptTotal,
		MetricStorePublishDropsTotal,
		MetricJournalEnabled,
		MetricJournalAppendsTotal,
		MetricJournalAppendErrorsTotal,
		MetricJournalRotationsTotal,
		MetricJournalCorruptSegmentsTotal,
		MetricJournalBytes,
		MetricJournalPendingJobs,
		MetricJournalReplayedJobsTotal,
		MetricJobPhaseSeconds,
		MetricQueueDepthObserved,
		MetricQueueDepthSampled,
		MetricResultBytes,
		MetricCampaignsTotal,
		MetricCampaignRunning,
		MetricCampaignPointsSubmitted,
		MetricCampaignRoundsTotal,
		MetricCampaignDispatchRetries,
		MetricCampaignExportsTotal,
		MetricCampaignResumedTotal,
	}
}

// IsCampaignMetric reports whether a catalogued family renders from the
// campaign exposition rather than the simsvc exposition. The prefix is
// derived from a catalog entry (never spelled as a literal) and matches both
// kagura_campaign_* and kagura_campaigns_total.
func IsCampaignMetric(name string) bool {
	prefix := strings.TrimSuffix(MetricCampaignRunning, "_running")
	return strings.HasPrefix(name, prefix)
}
