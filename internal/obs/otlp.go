package obs

// OTLP-shaped JSON export of a job trace, for offline analysis with the
// OpenTelemetry ecosystem (otel-cli, Jaeger's OTLP/JSON importer, jq). The
// output follows the OTLP/JSON span encoding — resourceSpans → scopeSpans →
// spans with hex trace/span IDs and stringified unix-nano timestamps — but
// is produced by hand: pulling in an OTLP SDK for one marshaller would
// break the zero-dependency rule, and the subset here is tiny.
//
// Like everything in obs, this is clock-free and deterministic: the caller
// passes the trace identity and the snapshot instant, and equal inputs
// marshal to equal bytes (spans are emitted in recorded order, IDs are
// derived by hashing, and the JSON is rendered field-by-field).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// otlpSpanKindInternal is the OTLP enum value for an internal (in-process)
// span, which is what every job phase is.
const otlpSpanKindInternal = 1

// MarshalOTLP renders the trace as one OTLP/JSON ExportTraceServiceRequest:
// a single resource (service.name = serviceName), a single scope, and one
// span per phase span of the trace. traceID seeds the 16-byte trace ID and
// the per-span IDs (both derived by hashing, so any string works); now is
// the snapshot instant an open span is reported through, exactly as in
// Spans. Parent span IDs are omitted: phases are sequential, not nested.
func (t *Trace) MarshalOTLP(serviceName, traceID string, now time.Time) ([]byte, error) {
	spans := t.Spans(now)
	var origin time.Time
	if t != nil {
		t.mu.Lock()
		origin = t.origin
		t.mu.Unlock()
	}
	tid := otlpTraceID(traceID)
	otlpSpans := make([]otlpSpan, 0, len(spans))
	for i, s := range spans {
		start := origin.Add(time.Duration(s.StartSeconds * float64(time.Second)))
		end := origin.Add(time.Duration((s.StartSeconds + s.Seconds) * float64(time.Second)))
		sp := otlpSpan{
			TraceID:           tid,
			SpanID:            otlpSpanID(traceID, i),
			Name:              s.Phase,
			Kind:              otlpSpanKindInternal,
			StartTimeUnixNano: fmt.Sprintf("%d", start.UnixNano()),
			EndTimeUnixNano:   fmt.Sprintf("%d", end.UnixNano()),
		}
		if s.Attempt > 0 {
			sp.Attributes = []otlpKeyValue{
				{Key: "kagura.attempt", Value: otlpValue{IntValue: fmt.Sprintf("%d", s.Attempt)}},
			}
		}
		otlpSpans = append(otlpSpans, sp)
	}
	req := otlpExport{
		ResourceSpans: []otlpResourceSpans{{
			Resource: otlpResource{
				Attributes: []otlpKeyValue{
					{Key: "service.name", Value: otlpValue{StringValue: &serviceName}},
				},
			},
			ScopeSpans: []otlpScopeSpans{{
				Scope: otlpScope{Name: "kagura/obs"},
				Spans: otlpSpans,
			}},
		}},
	}
	return json.Marshal(req)
}

// otlpTraceID derives a 16-byte (32 hex char) OTLP trace ID from any string.
func otlpTraceID(id string) string {
	sum := sha256.Sum256([]byte("trace|" + id))
	return hex.EncodeToString(sum[:16])
}

// otlpSpanID derives the 8-byte (16 hex char) span ID for span index i.
func otlpSpanID(id string, i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("span|%s|%d", id, i)))
	return hex.EncodeToString(sum[:8])
}

// The OTLP/JSON wire shapes — only the subset emitted here.

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is the OTLP AnyValue: exactly one field set. intValue is a
// string in OTLP/JSON (protobuf int64 JSON mapping).
type otlpValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    string  `json:"intValue,omitempty"`
}
