// Package capacitor models the energy buffer of an energy harvesting system.
//
// EHSs store harvested energy in a capacitor; the usable energy between two
// voltages is E = ½C(V₁² − V₂²). The system operates between a restoration
// threshold V_rst (reboot when charged above it) and a checkpoint threshold
// V_ckpt (JIT-checkpoint and power down when discharged below it). V_ckpt is
// provisioned so the worst-case checkpoint always completes on the residual
// charge below it. The model also includes size-dependent leakage (Table III
// of the paper shows leakage growing from 0.001% of total energy at 0.47µF to
// 5.91% at 1000µF).
package capacitor

import (
	"fmt"
	"math"
)

// Config describes a capacitor energy buffer.
type Config struct {
	// CapacitanceFarads is the buffer capacitance (paper default: 4.7µF).
	CapacitanceFarads float64
	// VMax is the maximum (fully charged) voltage.
	VMax float64
	// VRst is the restoration threshold: the system reboots once the voltage
	// recovers above it.
	VRst float64
	// VCkpt is the checkpoint threshold: the voltage monitor triggers a JIT
	// checkpoint when the voltage drops below it.
	VCkpt float64
	// VMin is the minimum operating voltage; charge below VMin is unusable.
	// The band [VMin, VCkpt] is the reserve that pays for the checkpoint.
	VMin float64
	// LeakConductance models leakage as I_leak = G·V, so P_leak = G·V².
	// Electrolytic leakage scales with capacitance; callers usually derive
	// this via DefaultLeakConductance.
	LeakConductance float64
}

// DefaultLeakConductance returns a leakage conductance proportional to
// capacitance, calibrated so the leakage share of total energy reproduces the
// paper's Table III trend (negligible at sub-µF, ~6% of total at 1000µF for
// the default workload envelope).
func DefaultLeakConductance(capacitanceFarads float64) float64 {
	// ~0.9nA/µF at 3V ⇒ G = I/V = 0.3e-9 per µF.
	return 0.3e-9 * (capacitanceFarads / 1e-6)
}

// Default returns the paper's default buffer: a 4.7µF capacitor on a 3.3V
// rail. The narrow V_rst/V_ckpt window is calibrated so one power cycle buys
// a few thousand to a few tens of thousands of committed instructions,
// matching the paper's Fig 14 regime.
func Default() Config {
	c := Config{
		CapacitanceFarads: 4.7e-6,
		VMax:              3.3,
		VRst:              3.0,
		VCkpt:             2.995,
		VMin:              2.8,
	}
	c.LeakConductance = DefaultLeakConductance(c.CapacitanceFarads)
	return c
}

// WithCapacitance returns a copy of the config with a different capacitance
// and correspondingly scaled leakage.
func (c Config) WithCapacitance(farads float64) Config {
	c.CapacitanceFarads = farads
	c.LeakConductance = DefaultLeakConductance(farads)
	return c
}

// Validate reports whether the threshold ordering is sane.
func (c Config) Validate() error {
	switch {
	case c.CapacitanceFarads <= 0:
		return fmt.Errorf("capacitor: non-positive capacitance %g", c.CapacitanceFarads)
	case !(c.VMax >= c.VRst && c.VRst > c.VCkpt && c.VCkpt > c.VMin && c.VMin >= 0):
		return fmt.Errorf("capacitor: thresholds must satisfy VMax>=VRst>VCkpt>VMin>=0, got %+v", c)
	case c.LeakConductance < 0:
		return fmt.Errorf("capacitor: negative leak conductance")
	}
	return nil
}

// energyAt returns the stored energy at voltage v.
func (c Config) energyAt(v float64) float64 {
	return 0.5 * c.CapacitanceFarads * v * v
}

// OperatingBudget returns the usable energy per power cycle: the band between
// V_rst and V_ckpt.
func (c Config) OperatingBudget() float64 {
	return c.energyAt(c.VRst) - c.energyAt(c.VCkpt)
}

// CheckpointReserve returns the energy reserved below V_ckpt for the JIT
// checkpoint itself.
func (c Config) CheckpointReserve() float64 {
	return c.energyAt(c.VCkpt) - c.energyAt(c.VMin)
}

// State is a capacitor with a current charge level. Use New to create one.
type State struct {
	cfg       Config
	energy    float64 // joules stored above 0V
	leaked    float64 // cumulative leakage, joules
	harvested float64 // cumulative absorbed harvest, joules

	// Threshold energies, derived once from the immutable Config. The
	// simulator compares against these on every instruction (BelowCheckpoint,
	// HeadroomAboveCheckpoint) and every harvest; caching the energyAt
	// results keeps those comparisons multiplication-free. The cached values
	// are bit-identical to recomputing energyAt, so results do not change.
	eMax  float64 // energyAt(VMax): the Harvest ceiling
	eRst  float64 // energyAt(VRst): the reboot threshold
	eCkpt float64 // energyAt(VCkpt): the checkpoint threshold
}

// New returns a capacitor charged to V_rst, ready for first boot.
func New(cfg Config) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &State{
		cfg:    cfg,
		energy: cfg.energyAt(cfg.VRst),
		eMax:   cfg.energyAt(cfg.VMax),
		eRst:   cfg.energyAt(cfg.VRst),
		eCkpt:  cfg.energyAt(cfg.VCkpt),
	}, nil
}

// Config returns the configuration.
func (s *State) Config() Config { return s.cfg }

// Energy returns the currently stored energy in joules.
func (s *State) Energy() float64 { return s.energy }

// Leaked returns the cumulative energy lost to leakage in joules.
func (s *State) Leaked() float64 { return s.leaked }

// Voltage returns the current capacitor voltage.
func (s *State) Voltage() float64 {
	return math.Sqrt(2 * s.energy / s.cfg.CapacitanceFarads)
}

// Harvest adds harvested energy, clamped at the VMax ceiling. It returns the
// energy actually absorbed.
func (s *State) Harvest(joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	// Branchy min instead of math.Min: the NaN/signed-zero handling of the
	// intrinsic is irrelevant here (joules > 0, headroom finite) and the
	// call is on the simulator's per-instruction path.
	absorbed := joules
	if head := s.eMax - s.energy; head < absorbed {
		absorbed = head
	}
	if absorbed < 0 {
		absorbed = 0
	}
	s.energy += absorbed
	s.harvested += absorbed
	return absorbed
}

// Harvested returns the cumulative energy absorbed from the ambient source.
func (s *State) Harvested() float64 { return s.harvested }

// Drain removes consumed energy. Charge never goes below zero.
func (s *State) Drain(joules float64) {
	if joules <= 0 {
		return
	}
	s.energy -= joules
	if s.energy < 0 {
		s.energy = 0
	}
}

// Leak applies leakage over dt seconds and returns the energy lost.
func (s *State) Leak(dt float64) float64 {
	//kagura:allow floateq exact sentinels: conductance 0 means leakage disabled, energy 0 means empty
	if s.cfg.LeakConductance == 0 || dt <= 0 || s.energy == 0 {
		return 0
	}
	v := s.Voltage()
	lost := s.cfg.LeakConductance * v * v * dt
	if lost > s.energy {
		lost = s.energy
	}
	s.energy -= lost
	s.leaked += lost
	return lost
}

// Snapshot is the capacitor's full mutable state, exported for the simulator
// checkpoint subsystem (internal/ckpt). Energies are joules.
type Snapshot struct {
	Energy    float64
	Leaked    float64
	Harvested float64
}

// Snapshot captures the current charge state.
func (s *State) Snapshot() Snapshot {
	return Snapshot{Energy: s.energy, Leaked: s.leaked, Harvested: s.harvested}
}

// Restore overwrites the charge state with a snapshot. It rejects physically
// impossible values (negative or NaN energies) with an error instead of
// adopting them, so a corrupted checkpoint cannot smuggle arbitrary state
// into a run. Charge above this capacitor's VMax ceiling is clamped to the
// ceiling: when a checkpoint is forked onto a smaller capacitor (a
// capacitor-size sweep), the excess charge simply cannot be carried over.
func (s *State) Restore(snap Snapshot) error {
	if math.IsNaN(snap.Energy) || math.IsNaN(snap.Leaked) || math.IsNaN(snap.Harvested) ||
		snap.Energy < 0 || snap.Leaked < 0 || snap.Harvested < 0 {
		return fmt.Errorf("capacitor: invalid snapshot energies %+v", snap)
	}
	if snap.Energy > s.eMax {
		snap.Energy = s.eMax
	}
	s.energy = snap.Energy
	s.leaked = snap.Leaked
	s.harvested = snap.Harvested
	return nil
}

// BelowCheckpoint reports whether the voltage monitor would fire (V ≤ V_ckpt).
func (s *State) BelowCheckpoint() bool {
	return s.energy <= s.eCkpt
}

// AboveRestore reports whether the system may reboot (V ≥ V_rst).
func (s *State) AboveRestore() bool {
	return s.energy >= s.eRst
}

// HeadroomAboveCheckpoint returns the energy remaining before the voltage
// monitor fires; zero when already at/below the threshold. Voltage-based
// Kagura triggers compare this headroom against a margin.
func (s *State) HeadroomAboveCheckpoint() float64 {
	h := s.energy - s.eCkpt
	if h < 0 {
		return 0
	}
	return h
}
