package capacitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadOrdering(t *testing.T) {
	bad := []Config{
		{CapacitanceFarads: 0, VMax: 3.3, VRst: 3, VCkpt: 2.9, VMin: 2.8},
		{CapacitanceFarads: 1e-6, VMax: 3.3, VRst: 3, VCkpt: 3.1, VMin: 2.8},
		{CapacitanceFarads: 1e-6, VMax: 2.0, VRst: 3, VCkpt: 2.9, VMin: 2.8},
		{CapacitanceFarads: 1e-6, VMax: 3.3, VRst: 3, VCkpt: 2.9, VMin: 2.95},
		{CapacitanceFarads: 1e-6, VMax: 3.3, VRst: 3, VCkpt: 2.9, VMin: 2.8, LeakConductance: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, cfg)
		}
	}
}

func TestEnergyBudgets(t *testing.T) {
	cfg := Default()
	want := 0.5 * 4.7e-6 * (3.0*3.0 - 2.995*2.995)
	if got := cfg.OperatingBudget(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("operating budget %g, want %g", got, want)
	}
	if cfg.CheckpointReserve() <= 0 {
		t.Fatal("checkpoint reserve must be positive")
	}
}

func TestNewStartsAtRestore(t *testing.T) {
	s, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	if !s.AboveRestore() {
		t.Fatal("new capacitor should be at V_rst")
	}
	if math.Abs(s.Voltage()-3.0) > 1e-9 {
		t.Fatalf("voltage = %v, want 3.0", s.Voltage())
	}
}

func TestHarvestClampsAtVMax(t *testing.T) {
	s, _ := New(Default())
	absorbed := s.Harvest(1.0) // 1 joule, far beyond capacity
	ceiling := 0.5 * 4.7e-6 * 3.3 * 3.3
	if math.Abs(s.Energy()-ceiling) > 1e-12 {
		t.Fatalf("energy = %g, want ceiling %g", s.Energy(), ceiling)
	}
	if absorbed >= 1.0 {
		t.Fatalf("absorbed %g should be less than offered", absorbed)
	}
	if s.Harvest(-1) != 0 {
		t.Fatal("negative harvest should absorb nothing")
	}
}

func TestDrainFloorsAtZero(t *testing.T) {
	s, _ := New(Default())
	s.Drain(1.0)
	if s.Energy() != 0 {
		t.Fatalf("energy = %g, want 0", s.Energy())
	}
	s.Drain(-1) // no-op
	if s.Energy() != 0 {
		t.Fatal("negative drain changed energy")
	}
}

func TestThresholdCrossing(t *testing.T) {
	s, _ := New(Default())
	if s.BelowCheckpoint() {
		t.Fatal("fresh capacitor should be above checkpoint")
	}
	s.Drain(s.Config().OperatingBudget() + 1e-12)
	if !s.BelowCheckpoint() {
		t.Fatal("should be below checkpoint after draining the budget")
	}
	if s.AboveRestore() {
		t.Fatal("should be below restore after draining")
	}
}

func TestHeadroom(t *testing.T) {
	s, _ := New(Default())
	h := s.HeadroomAboveCheckpoint()
	if math.Abs(h-s.Config().OperatingBudget()) > 1e-12 {
		t.Fatalf("headroom %g, want budget %g", h, s.Config().OperatingBudget())
	}
	s.Drain(s.Energy())
	if s.HeadroomAboveCheckpoint() != 0 {
		t.Fatal("headroom should clamp at 0")
	}
}

func TestLeakScalesWithCapacitance(t *testing.T) {
	small, _ := New(Default().WithCapacitance(0.47e-6))
	big, _ := New(Default().WithCapacitance(1000e-6))
	ls := small.Leak(1.0)
	lb := big.Leak(1.0)
	if lb <= ls {
		t.Fatalf("big capacitor should leak more: %g vs %g", lb, ls)
	}
	if small.Leaked() != ls || big.Leaked() != lb {
		t.Fatal("cumulative leak accounting wrong")
	}
}

func TestLeakNeverNegative(t *testing.T) {
	s, _ := New(Default())
	if s.Leak(-5) != 0 || s.Leak(0) != 0 {
		t.Fatal("non-positive dt must not leak")
	}
	s.Drain(s.Energy())
	if s.Leak(10) != 0 {
		t.Fatal("empty capacitor cannot leak")
	}
}

func TestConservationProperty(t *testing.T) {
	// Harvest + initial = final + drained + leaked (when no VMax clamping).
	f := func(ops []uint8) bool {
		s, _ := New(Default())
		initial := s.Energy()
		var harvested, drained float64
		for _, op := range ops {
			amt := float64(op) * 1e-9
			switch op % 3 {
			case 0:
				harvested += s.Harvest(amt)
			case 1:
				before := s.Energy()
				s.Drain(amt)
				drained += before - s.Energy()
			case 2:
				s.Leak(float64(op) * 1e-3)
			}
		}
		total := initial + harvested
		final := s.Energy() + drained + s.Leaked()
		return math.Abs(total-final) < 1e-15+1e-9*total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageMonotonicInEnergy(t *testing.T) {
	s, _ := New(Default())
	v1 := s.Voltage()
	s.Drain(1e-7)
	if s.Voltage() >= v1 {
		t.Fatal("voltage should fall when drained")
	}
}
