package nvm

import (
	"bytes"
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{ReRAM: "ReRAM", PCM: "PCM", STTRAM: "STTRAM"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestKindByName(t *testing.T) {
	for _, name := range []string{"ReRAM", "pcm", "STT-RAM", "sttram"} {
		if _, err := KindByName(name); err != nil {
			t.Errorf("KindByName(%q) failed: %v", name, err)
		}
	}
	if _, err := KindByName("flash"); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestParamsOrdering(t *testing.T) {
	re, pcm, stt := ParamsFor(ReRAM), ParamsFor(PCM), ParamsFor(STTRAM)
	if !(pcm.WriteEnergyPJPerByte > re.WriteEnergyPJPerByte) {
		t.Error("PCM writes should cost more than ReRAM")
	}
	if !(stt.ReadLatencyCycles < pcm.ReadLatencyCycles) {
		t.Error("STT-RAM reads should be faster than PCM")
	}
}

func TestSizeScalesEnergy(t *testing.T) {
	small := Config{Params: ParamsFor(ReRAM), SizeBytes: 2 << 20}
	ref := Config{Params: ParamsFor(ReRAM), SizeBytes: 16 << 20}
	big := Config{Params: ParamsFor(ReRAM), SizeBytes: 32 << 20}
	if !(small.ReadEnergy(32) < ref.ReadEnergy(32) && ref.ReadEnergy(32) < big.ReadEnergy(32)) {
		t.Fatalf("energy not monotone in size: %g %g %g",
			small.ReadEnergy(32), ref.ReadEnergy(32), big.ReadEnergy(32))
	}
	if math.Abs(ref.ReadEnergy(32)-0.45*32*1e-12) > 1e-15 {
		t.Fatalf("reference read energy off: %g", ref.ReadEnergy(32))
	}
}

func TestReadUnwrittenUsesSynth(t *testing.T) {
	synth := func(addr uint32, buf []byte) {
		for i := range buf {
			buf[i] = byte(addr) + byte(i)
		}
	}
	m := New(DefaultConfig(), 32, synth)
	buf := make([]byte, 32)
	m.ReadBlock(64, buf)
	want := make([]byte, 32)
	synth(64, want)
	if !bytes.Equal(buf, want) {
		t.Fatal("synthesized content mismatch")
	}
}

func TestReadUnwrittenNilSynthIsZero(t *testing.T) {
	m := New(DefaultConfig(), 32, nil)
	buf := bytes.Repeat([]byte{0xff}, 32)
	m.ReadBlock(0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("nil synth should zero the buffer")
		}
	}
}

func TestWriteThenRead(t *testing.T) {
	m := New(DefaultConfig(), 32, func(_ uint32, buf []byte) {
		for i := range buf {
			buf[i] = 0xAA
		}
	})
	data := bytes.Repeat([]byte{0x5B}, 32)
	m.WriteBlock(100, data) // unaligned address within block 96
	got := make([]byte, 32)
	m.ReadBlock(96, got)
	if !bytes.Equal(got, data) {
		t.Fatal("read-after-write mismatch")
	}
	// Neighboring block untouched.
	m.ReadBlock(128, got)
	if got[0] != 0xAA {
		t.Fatal("neighboring block affected")
	}
	if m.TouchedBlocks() != 1 {
		t.Fatalf("touched = %d, want 1", m.TouchedBlocks())
	}
}

func TestWriteCopiesData(t *testing.T) {
	m := New(DefaultConfig(), 4, nil)
	data := []byte{1, 2, 3, 4}
	m.WriteBlock(0, data)
	data[0] = 99
	got := make([]byte, 4)
	m.ReadBlock(0, got)
	if got[0] != 1 {
		t.Fatal("WriteBlock aliased caller's slice")
	}
}

func TestCounters(t *testing.T) {
	m := New(DefaultConfig(), 32, nil)
	buf := make([]byte, 32)
	m.ReadBlock(0, buf)
	m.WriteBlock(0, buf)
	lat, e := m.WriteRaw(128) // 4 blocks
	if m.Reads != 1 || m.Writes != 1+4 {
		t.Fatalf("counters = %d reads, %d writes", m.Reads, m.Writes)
	}
	if lat != 4*ParamsFor(ReRAM).WriteLatencyCycles {
		t.Fatalf("raw write latency = %d", lat)
	}
	if e <= 0 {
		t.Fatal("raw write energy must be positive")
	}
	m.Reset()
	if m.Reads != 0 || m.Writes != 0 || m.TouchedBlocks() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestAccessEnergiesPositive(t *testing.T) {
	m := New(DefaultConfig(), 32, nil)
	buf := make([]byte, 32)
	if lat, e := m.ReadBlock(0, buf); lat <= 0 || e <= 0 {
		t.Fatal("read latency/energy must be positive")
	}
	if lat, e := m.WriteBlock(0, buf); lat <= 0 || e <= 0 {
		t.Fatal("write latency/energy must be positive")
	}
}

func TestMismatchedBufferPanics(t *testing.T) {
	m := New(DefaultConfig(), 32, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short buffer")
		}
	}()
	m.ReadBlock(0, make([]byte, 16))
}

func TestReadRawCountsBlocks(t *testing.T) {
	m := New(DefaultConfig(), 32, nil)
	lat, _ := m.ReadRaw(33) // 2 blocks
	if lat != 2*ParamsFor(ReRAM).ReadLatencyCycles {
		t.Fatalf("latency = %d", lat)
	}
	if m.Reads != 2 {
		t.Fatalf("reads = %d", m.Reads)
	}
}
