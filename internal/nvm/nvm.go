// Package nvm models the nonvolatile main memory of an energy harvesting
// system.
//
// EHSs pair a volatile SRAM cache with NVM main memory (the paper's Table I
// uses 16MB ReRAM); NVM accesses dominate the energy budget, which is why
// cache behavior matters so much. The model provides:
//
//   - parameter sets for ReRAM (default), PCM, and STT-RAM with per-block
//     read/write latency and energy, mildly scaled by memory size (the paper
//     observes in Fig 27 that larger NVM raises the energy cost per miss);
//   - a sparse backing store that records written block contents and
//     synthesizes deterministic contents for never-written addresses via a
//     caller-supplied Synthesizer (the workload's value model), so the cache
//     compressors always operate on real bytes.
package nvm

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind selects an NVM technology.
type Kind int

const (
	ReRAM Kind = iota
	PCM
	STTRAM
)

// String returns the technology name.
func (k Kind) String() string {
	switch k {
	case ReRAM:
		return "ReRAM"
	case PCM:
		return "PCM"
	case STTRAM:
		return "STTRAM"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName parses a technology name.
func KindByName(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "reram":
		return ReRAM, nil
	case "pcm":
		return PCM, nil
	case "sttram", "stt-ram", "stt":
		return STTRAM, nil
	}
	return 0, fmt.Errorf("nvm: unknown kind %q", name)
}

// Params holds access latency and energy for one technology at a reference
// 16MB capacity.
type Params struct {
	Kind Kind
	// ReadLatency / WriteLatency are per-block access latencies in core
	// cycles at 200MHz. The ReRAM numbers derive from Table I's timing row
	// (tRCD 18ns + tCL 15ns + burst ≈ 40ns ≈ 8 cycles read; tWR 150ns = 30
	// cycles write).
	ReadLatencyCycles  int
	WriteLatencyCycles int
	// ReadEnergyPJPerByte / WriteEnergyPJPerByte are dynamic access energies
	// in picojoules per byte at the 16MB reference capacity.
	ReadEnergyPJPerByte  float64
	WriteEnergyPJPerByte float64
}

// ParamsFor returns the parameter set for a technology.
func ParamsFor(kind Kind) Params {
	switch kind {
	case PCM:
		// PCM: reads comparable to ReRAM, writes slower and costlier.
		return Params{Kind: PCM, ReadLatencyCycles: 12, WriteLatencyCycles: 60,
			ReadEnergyPJPerByte: 0.8, WriteEnergyPJPerByte: 4.5}
	case STTRAM:
		// STT-RAM: fast reads, writes cheaper than PCM but above ReRAM.
		return Params{Kind: STTRAM, ReadLatencyCycles: 6, WriteLatencyCycles: 24,
			ReadEnergyPJPerByte: 0.5, WriteEnergyPJPerByte: 2.0}
	default:
		return Params{Kind: ReRAM, ReadLatencyCycles: 8, WriteLatencyCycles: 30,
			ReadEnergyPJPerByte: 0.45, WriteEnergyPJPerByte: 2.2}
	}
}

// Config describes a main memory instance.
type Config struct {
	Params Params
	// SizeBytes is the memory capacity (paper default: 16MB). Capacity
	// scales access energy: each doubling beyond the 16MB reference adds ~6%
	// (longer lines, larger decoders), and halving subtracts likewise.
	SizeBytes int
}

// DefaultConfig returns the paper's default: 16MB ReRAM.
func DefaultConfig() Config {
	return Config{Params: ParamsFor(ReRAM), SizeBytes: 16 << 20}
}

// sizeFactor returns the capacity-dependent energy multiplier.
func (c Config) sizeFactor() float64 {
	const refBytes = 16 << 20
	if c.SizeBytes <= 0 {
		return 1
	}
	return math.Pow(1.06, math.Log2(float64(c.SizeBytes)/refBytes))
}

// ReadEnergy returns the energy in joules to read n bytes.
func (c Config) ReadEnergy(n int) float64 {
	return c.Params.ReadEnergyPJPerByte * float64(n) * c.sizeFactor() * 1e-12
}

// WriteEnergy returns the energy in joules to write n bytes.
func (c Config) WriteEnergy(n int) float64 {
	return c.Params.WriteEnergyPJPerByte * float64(n) * c.sizeFactor() * 1e-12
}

// Synthesizer fills buf with the deterministic "initial image" content of the
// block at addr. Workloads install a synthesizer matching their value model
// so compressibility of demand-fetched data is realistic.
type Synthesizer func(addr uint32, buf []byte)

// Memory is a sparse NVM backing store. Blocks that have been written hold
// their written bytes; all other blocks are synthesized on demand.
type Memory struct {
	cfg       Config
	blockSize int
	synth     Synthesizer
	written   map[uint32][]byte // block-aligned address → contents

	// Access counters (block-granularity operations).
	Reads  int64
	Writes int64
}

// New creates a Memory with the given block size and content synthesizer.
// A nil synthesizer yields all-zero initial contents.
func New(cfg Config, blockSize int, synth Synthesizer) *Memory {
	if blockSize <= 0 {
		panic("nvm: non-positive block size")
	}
	return &Memory{
		cfg:       cfg,
		blockSize: blockSize,
		synth:     synth,
		written:   make(map[uint32][]byte),
	}
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// BlockSize returns the block granularity in bytes.
func (m *Memory) BlockSize() int { return m.blockSize }

// align maps an address to its block base.
func (m *Memory) align(addr uint32) uint32 {
	return addr - addr%uint32(m.blockSize)
}

// ReadBlock copies the block containing addr into buf (len must equal the
// block size) and returns the access latency in cycles and energy in joules.
func (m *Memory) ReadBlock(addr uint32, buf []byte) (latency int, energy float64) {
	if len(buf) != m.blockSize {
		panic("nvm: ReadBlock buffer size mismatch")
	}
	base := m.align(addr)
	if data, ok := m.written[base]; ok {
		copy(buf, data)
	} else if m.synth != nil {
		m.synth(base, buf)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	m.Reads++
	return m.cfg.Params.ReadLatencyCycles, m.cfg.ReadEnergy(m.blockSize)
}

// WriteBlock stores data as the block containing addr and returns latency in
// cycles and energy in joules.
func (m *Memory) WriteBlock(addr uint32, data []byte) (latency int, energy float64) {
	if len(data) != m.blockSize {
		panic("nvm: WriteBlock buffer size mismatch")
	}
	base := m.align(addr)
	dst, ok := m.written[base]
	if !ok {
		dst = make([]byte, m.blockSize)
		m.written[base] = dst
	}
	copy(dst, data)
	m.Writes++
	return m.cfg.Params.WriteLatencyCycles, m.cfg.WriteEnergy(m.blockSize)
}

// WriteRaw accounts for an n-byte write that does not go through the block
// store (e.g. checkpointing registers to NVFFs). Returns latency and energy.
func (m *Memory) WriteRaw(n int) (latency int, energy float64) {
	blocks := (n + m.blockSize - 1) / m.blockSize
	m.Writes += int64(blocks)
	return m.cfg.Params.WriteLatencyCycles * blocks, m.cfg.WriteEnergy(n)
}

// ReadRaw accounts for an n-byte read outside the block store.
func (m *Memory) ReadRaw(n int) (latency int, energy float64) {
	blocks := (n + m.blockSize - 1) / m.blockSize
	m.Reads += int64(blocks)
	return m.cfg.Params.ReadLatencyCycles * blocks, m.cfg.ReadEnergy(n)
}

// BlockState is one written block in a memory snapshot.
type BlockState struct {
	Addr uint32
	Data []byte
}

// Snapshot is the memory's full mutable state, exported for the simulator
// checkpoint subsystem (internal/ckpt). Blocks are sorted by address so the
// snapshot of a given memory state is always the same value regardless of
// map iteration order.
type Snapshot struct {
	Blocks []BlockState
	Reads  int64
	Writes int64
}

// Snapshot captures the written-block contents and access counters. Block
// data is deep-copied, so the snapshot stays valid as the memory mutates.
func (m *Memory) Snapshot() Snapshot {
	snap := Snapshot{Reads: m.Reads, Writes: m.Writes}
	snap.Blocks = make([]BlockState, 0, len(m.written))
	for addr, data := range m.written {
		snap.Blocks = append(snap.Blocks, BlockState{Addr: addr, Data: append([]byte(nil), data...)})
	}
	sort.Slice(snap.Blocks, func(i, j int) bool { return snap.Blocks[i].Addr < snap.Blocks[j].Addr })
	return snap
}

// Restore overwrites the written-block store and counters from a snapshot,
// deep-copying block data. Malformed snapshots (wrong block sizes, unaligned
// or duplicate addresses, negative counters) are rejected with an error.
func (m *Memory) Restore(snap Snapshot) error {
	if snap.Reads < 0 || snap.Writes < 0 {
		return fmt.Errorf("nvm: negative snapshot counters (reads %d, writes %d)", snap.Reads, snap.Writes)
	}
	written := make(map[uint32][]byte, len(snap.Blocks))
	for i, b := range snap.Blocks {
		if len(b.Data) != m.blockSize {
			return fmt.Errorf("nvm: snapshot block %d has %dB data, block size is %dB", i, len(b.Data), m.blockSize)
		}
		if b.Addr%uint32(m.blockSize) != 0 {
			return fmt.Errorf("nvm: snapshot block %d address %#x not block-aligned", i, b.Addr)
		}
		if _, dup := written[b.Addr]; dup {
			return fmt.Errorf("nvm: snapshot block address %#x appears twice", b.Addr)
		}
		written[b.Addr] = append([]byte(nil), b.Data...)
	}
	m.written = written
	m.Reads, m.Writes = snap.Reads, snap.Writes
	return nil
}

// TouchedBlocks returns how many distinct blocks have been written.
func (m *Memory) TouchedBlocks() int { return len(m.written) }

// Reset clears written contents and counters (used between simulation runs).
func (m *Memory) Reset() {
	m.written = make(map[uint32][]byte)
	m.Reads, m.Writes = 0, 0
}
