package ckpt

import (
	"fmt"
	"os"
	"path/filepath"

	"kagura/internal/faultinject"
)

// Fault-injection points on the checkpoint persistence path. fpEncode fires
// at the start of Encode; fpWrite fires twice inside WriteFileAtomic — once
// before the temp file is written (occurrence 2k+1) and once after the bytes
// are down but before the rename (occurrence 2k+2) — so a chaos plan can kill
// the write at either side of the commit point and assert the destination
// file is never left truncated.
var (
	fpEncode = faultinject.Point("ckpt.encode")
	fpWrite  = faultinject.Point("ckpt.write")
)

// WriteFileAtomic writes data to path so readers never observe a partial
// file: the bytes land in a temp file in the same directory, are fsynced,
// and the temp file is renamed over path — rename within a directory is
// atomic on POSIX filesystems. A crash or injected fault at any step leaves
// either the old file or the complete new one, never a truncated blob; the
// temp file is removed on every failure path.
//
// os.WriteFile offers none of this: it truncates the destination first, so
// an interruption mid-write destroys the previous checkpoint too.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	if err := fpWrite.FireErr(); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(perm); err != nil {
		return fail(err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := fpWrite.FireErr(); err != nil {
		return fail(fmt.Errorf("ckpt: write %s: %w", path, err))
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	//kagura:allow atomicwrite this IS the atomic-write commit point: the temp file was fsynced above, so the rename publishes complete, durable bytes
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Directory fsync is best-effort: not
	// every platform or filesystem supports it, and the file contents are
	// already synced.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
