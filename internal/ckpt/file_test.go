package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kagura/internal/faultinject"
)

// armPlan enables a fault plan for one test, disarming on cleanup.
func armPlan(t *testing.T, p faultinject.Plan) {
	t.Helper()
	if err := faultinject.Enable(p); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
}

// tempLeftovers returns any .tmp- files remaining next to path.
func tempLeftovers(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var leftover []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			leftover = append(leftover, e.Name())
		}
	}
	return leftover
}

func TestWriteFileAtomicWritesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content after replace = %q, want %q", got, "second")
	}
	if left := tempLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

// A fault after the bytes are written but before the rename must leave the
// previous checkpoint intact and clean up the temp file — the whole point of
// the atomic write.
func TestWriteFileAtomicFaultPreservesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	// fpWrite fires twice per call; the first call above consumed occurrences
	// 1 and 2, so occurrence 4 is the post-write/pre-rename point of the next
	// call... except Enable resets occurrence counters, so arm Nth=2 now.
	armPlan(t, faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Point: "ckpt.write", Kind: faultinject.KindError, Nth: 2},
	}})

	err := WriteFileAtomic(path, []byte("new"), 0o644)
	if err == nil {
		t.Fatal("injected pre-rename fault did not surface")
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("old checkpoint corrupted by failed write: %q", got)
	}
	if left := tempLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("failed write left temp files: %v", left)
	}
	if faultinject.Fires("ckpt.write") != 1 {
		t.Fatalf("ckpt.write fired %d times, want 1", faultinject.Fires("ckpt.write"))
	}
}

// A fault before anything is written fails fast: no temp file, target
// untouched.
func TestWriteFileAtomicFaultBeforeWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	armPlan(t, faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Point: "ckpt.write", Kind: faultinject.KindError, Nth: 1},
	}})

	if err := WriteFileAtomic(path, []byte("new"), 0o644); err == nil {
		t.Fatal("injected pre-write fault did not surface")
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("old checkpoint corrupted: %q", got)
	}
	if left := tempLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("failed write left temp files: %v", left)
	}
}

// An armed ckpt.encode fault surfaces as an Encode error, so chaos plans can
// kill checkpointing upstream of file IO.
func TestEncodeFaultPoint(t *testing.T) {
	snap, _ := testSnapshot(t, "jpeg", 1000)
	if _, err := Encode(snap); err != nil {
		t.Fatalf("clean encode failed: %v", err)
	}

	armPlan(t, faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Point: "ckpt.encode", Kind: faultinject.KindError, Nth: 1},
	}})
	if _, err := Encode(snap); err == nil {
		t.Fatal("injected encode fault did not surface")
	}
}
