package ckpt

import (
	"fmt"
	"math"
	"strings"

	"kagura/internal/cache"
	"kagura/internal/ehs"
)

// Describe renders a human-readable summary of a checkpoint: where the run
// is, what it has accumulated, and which optional controllers it carries.
func Describe(snap *ehs.Snapshot) string {
	if snap == nil {
		return "<nil snapshot>"
	}
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("config:        %s", snap.ConfigHash)
	w("cycle:         %d (%.6fs trace time, %d powered)", snap.Time, float64(snap.Time)*ehs.CyclePeriod, snap.PoweredCycles)
	w("position:      instruction %d (region boundary %d)", snap.Pos, snap.LastBoundary)
	w("power cycles:  %d completed; current: %d committed, %d loads, %d stores", snap.Res.PowerCycles, snap.CurCommitted, snap.CurLoads, snap.CurStores)
	w("energy:        %.6g J total (compress %.3g, decompress %.3g, cache %.3g, memory %.3g, checkpoint %.3g, others %.3g)",
		snap.Res.Energy.Total(), snap.Res.Energy.Compress, snap.Res.Energy.Decompress,
		snap.Res.Energy.CacheOther, snap.Res.Energy.Memory, snap.Res.Energy.Checkpoint, snap.Res.Energy.Others)
	w("capacitor:     %.4g J stored, %.4g J leaked, %.4g J harvested", snap.Cap.Energy, snap.Cap.Leaked, snap.Cap.Harvested)
	w("nvm:           %d written blocks, %d reads, %d writes", len(snap.Mem.Blocks), snap.Mem.Reads, snap.Mem.Writes)
	w("icache:        %s", cacheLine(&snap.ICache))
	w("dcache:        %s", cacheLine(&snap.DCache))
	w("cycle log:     %d records", len(snap.Res.Cycles))
	if snap.Pred != nil {
		w("acc:           GCP %d (%d avoided misses, %d penalized hits)", snap.Pred.Counter, snap.Pred.AvoidedMisses, snap.Pred.PenalizedHits)
	} else {
		w("acc:           absent")
	}
	if snap.Kag != nil {
		w("kagura:        mode %v, R_mem %d, R_prev %d, R_thres %d, R_adjust %d, %d RM entries",
			snap.Kag.Mode, snap.Kag.RMem, snap.Kag.RPrev, snap.Kag.RThres, snap.Kag.RAdjust, snap.Kag.Stats.RMEntries)
	} else {
		w("kagura:        absent")
	}
	return b.String()
}

// cacheLine summarizes one cache array's snapshot.
func cacheLine(st *cache.State) string {
	valid, compressed := 0, 0
	for _, set := range st.Sets {
		for _, ln := range set.Lines {
			if ln.Valid {
				valid++
				if ln.Compressed {
					compressed++
				}
			}
		}
	}
	return fmt.Sprintf("%d sets, %d valid lines (%d compressed); %d accesses, %d hits, %d misses",
		len(st.Sets), valid, compressed, st.Stats.Accesses, st.Stats.Hits, st.Stats.Misses)
}

// differ collects field-by-field differences as "field: a → b" lines.
type differ struct {
	out []string
}

func (d *differ) i(name string, a, b int64) {
	if a != b {
		d.out = append(d.out, fmt.Sprintf("%s: %d → %d", name, a, b))
	}
}

func (d *differ) u(name string, a, b uint64) {
	if a != b {
		d.out = append(d.out, fmt.Sprintf("%s: %d → %d", name, a, b))
	}
}

// f compares floats by bit pattern: a checkpoint diff must surface *any*
// representational change, including ones smaller than printing precision.
func (d *differ) f(name string, a, b float64) {
	if math.Float64bits(a) != math.Float64bits(b) {
		d.out = append(d.out, fmt.Sprintf("%s: %g → %g", name, a, b))
	}
}

func (d *differ) b(name string, a, b bool) {
	if a != b {
		d.out = append(d.out, fmt.Sprintf("%s: %t → %t", name, a, b))
	}
}

func (d *differ) s(name string, a, b string) {
	if a != b {
		d.out = append(d.out, fmt.Sprintf("%s: %s → %s", name, a, b))
	}
}

func (d *differ) stats(prefix string, a, b *cache.Stats) {
	d.i(prefix+".accesses", a.Accesses, b.Accesses)
	d.i(prefix+".hits", a.Hits, b.Hits)
	d.i(prefix+".misses", a.Misses, b.Misses)
	d.i(prefix+".hitsCompressed", a.HitsCompressed, b.HitsCompressed)
	d.i(prefix+".hitsBeyondWays", a.HitsBeyondWays, b.HitsBeyondWays)
	d.i(prefix+".compressions", a.Compressions, b.Compressions)
	d.i(prefix+".decompressions", a.Decompressions, b.Decompressions)
	d.i(prefix+".evictions", a.Evictions, b.Evictions)
	d.i(prefix+".dirtyEvictions", a.DirtyEvictions, b.DirtyEvictions)
	d.i(prefix+".shadowHits", a.ShadowHits, b.ShadowHits)
	d.i(prefix+".fills", a.Fills, b.Fills)
	d.i(prefix+".fillsCompressed", a.FillsCompressed, b.FillsCompressed)
	d.i(prefix+".decayEvictions", a.DecayEvictions, b.DecayEvictions)
	d.i(prefix+".prefetchFills", a.PrefetchFills, b.PrefetchFills)
}

// cacheArray reports structural cache differences compactly: equal-geometry
// arrays get per-set line counts; mismatched geometry is reported as such.
func (d *differ) cacheArray(prefix string, a, b *cache.State) {
	d.stats(prefix, &a.Stats, &b.Stats)
	d.u(prefix+".victimSeed", a.VictimSeed, b.VictimSeed)
	if len(a.Sets) != len(b.Sets) {
		d.out = append(d.out, fmt.Sprintf("%s: %d sets → %d sets", prefix, len(a.Sets), len(b.Sets)))
		return
	}
	differing := 0
	first := -1
	for si := range a.Sets {
		if !setsEqual(&a.Sets[si], &b.Sets[si]) {
			differing++
			if first < 0 {
				first = si
			}
		}
	}
	if differing > 0 {
		d.out = append(d.out, fmt.Sprintf("%s: contents differ in %d/%d sets (first: set %d)", prefix, differing, len(a.Sets), first))
	}
}

func setsEqual(a, b *cache.SetState) bool {
	if len(a.Lines) != len(b.Lines) || len(a.Order) != len(b.Order) || len(a.Shadow) != len(b.Shadow) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	for i := range a.Shadow {
		if a.Shadow[i] != b.Shadow[i] {
			return false
		}
	}
	for i := range a.Lines {
		la, lb := &a.Lines[i], &b.Lines[i]
		if la.Valid != lb.Valid || la.Addr != lb.Addr || la.Dirty != lb.Dirty ||
			la.Compressed != lb.Compressed || la.Segments != lb.Segments ||
			la.LastUse != lb.LastUse || !bytesEqual(la.Data, lb.Data) {
			return false
		}
	}
	return true
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns the field-by-field differences between two checkpoints as
// human-readable "field: a → b" lines, empty when the snapshots are
// identical. Floats are compared bit-exactly; large collections (NVM blocks,
// cache contents, the cycle log) are summarized by count and first
// divergence rather than dumped.
func Diff(a, b *ehs.Snapshot) []string {
	if a == nil || b == nil {
		if a == b {
			return nil
		}
		return []string{fmt.Sprintf("snapshot presence: %t → %t", a != nil, b != nil)}
	}
	d := &differ{}
	d.s("configHash", a.ConfigHash, b.ConfigHash)
	d.i("time", a.Time, b.Time)
	d.i("poweredCycles", a.PoweredCycles, b.PoweredCycles)
	d.i("pos", a.Pos, b.Pos)
	d.i("lastBoundary", a.LastBoundary, b.LastBoundary)
	d.i("curCommitted", a.CurCommitted, b.CurCommitted)
	d.i("curLoads", a.CurLoads, b.CurLoads)
	d.i("curStores", a.CurStores, b.CurStores)
	d.i("curStartPowered", a.CurStartPowered, b.CurStartPowered)
	d.u("fetchBufBase", uint64(a.FetchBufBase), uint64(b.FetchBufBase))
	d.b("fetchBufValid", a.FetchBufValid, b.FetchBufValid)

	d.b("res.completed", a.Res.Completed, b.Res.Completed)
	d.f("res.execSeconds", a.Res.ExecSeconds, b.Res.ExecSeconds)
	d.i("res.committed", a.Res.Committed, b.Res.Committed)
	d.i("res.executed", a.Res.Executed, b.Res.Executed)
	d.i("res.powerCycles", a.Res.PowerCycles, b.Res.PowerCycles)
	d.f("res.energy.compress", a.Res.Energy.Compress, b.Res.Energy.Compress)
	d.f("res.energy.decompress", a.Res.Energy.Decompress, b.Res.Energy.Decompress)
	d.f("res.energy.cacheOther", a.Res.Energy.CacheOther, b.Res.Energy.CacheOther)
	d.f("res.energy.memory", a.Res.Energy.Memory, b.Res.Energy.Memory)
	d.f("res.energy.checkpoint", a.Res.Energy.Checkpoint, b.Res.Energy.Checkpoint)
	d.f("res.energy.others", a.Res.Energy.Others, b.Res.Energy.Others)
	d.stats("res.icache", &a.Res.ICache, &b.Res.ICache)
	d.stats("res.dcache", &a.Res.DCache, &b.Res.DCache)
	d.i("res.compressions", a.Res.Compressions, b.Res.Compressions)
	d.i("res.decompressions", a.Res.Decompressions, b.Res.Decompressions)
	d.i("res.kaguraRMEntries", a.Res.KaguraRMEntries, b.Res.KaguraRMEntries)
	d.i("res.prefetches", a.Res.Prefetches, b.Res.Prefetches)
	d.i("res.cycleLogRecords", int64(len(a.Res.Cycles)), int64(len(b.Res.Cycles)))
	d.i("res.checkpointedBlocks", a.Res.CheckpointedBlocks, b.Res.CheckpointedBlocks)
	d.f("res.capacitorLeakJoules", a.Res.CapacitorLeakJoules, b.Res.CapacitorLeakJoules)

	d.f("cap.energy", a.Cap.Energy, b.Cap.Energy)
	d.f("cap.leaked", a.Cap.Leaked, b.Cap.Leaked)
	d.f("cap.harvested", a.Cap.Harvested, b.Cap.Harvested)

	d.i("nvm.blocks", int64(len(a.Mem.Blocks)), int64(len(b.Mem.Blocks)))
	if len(a.Mem.Blocks) == len(b.Mem.Blocks) {
		differing := 0
		first := uint32(0)
		for i := range a.Mem.Blocks {
			ba, bb := &a.Mem.Blocks[i], &b.Mem.Blocks[i]
			if ba.Addr != bb.Addr || !bytesEqual(ba.Data, bb.Data) {
				if differing == 0 {
					first = ba.Addr
				}
				differing++
			}
		}
		if differing > 0 {
			d.out = append(d.out, fmt.Sprintf("nvm: contents differ in %d blocks (first: %#x)", differing, first))
		}
	}
	d.i("nvm.reads", a.Mem.Reads, b.Mem.Reads)
	d.i("nvm.writes", a.Mem.Writes, b.Mem.Writes)

	d.cacheArray("icache", &a.ICache, &b.ICache)
	d.cacheArray("dcache", &a.DCache, &b.DCache)

	switch {
	case a.Pred == nil && b.Pred != nil, a.Pred != nil && b.Pred == nil:
		d.out = append(d.out, fmt.Sprintf("acc presence: %t → %t", a.Pred != nil, b.Pred != nil))
	case a.Pred != nil:
		d.i("acc.counter", int64(a.Pred.Counter), int64(b.Pred.Counter))
		d.i("acc.avoidedMisses", a.Pred.AvoidedMisses, b.Pred.AvoidedMisses)
		d.i("acc.penalizedHits", a.Pred.PenalizedHits, b.Pred.PenalizedHits)
	}
	switch {
	case a.Kag == nil && b.Kag != nil, a.Kag != nil && b.Kag == nil:
		d.out = append(d.out, fmt.Sprintf("kagura presence: %t → %t", a.Kag != nil, b.Kag != nil))
	case a.Kag != nil:
		ka, kb := a.Kag, b.Kag
		d.u("kagura.rMem", uint64(ka.RMem), uint64(kb.RMem))
		d.u("kagura.rPrev", uint64(ka.RPrev), uint64(kb.RPrev))
		d.u("kagura.rThres", uint64(ka.RThres), uint64(kb.RThres))
		d.i("kagura.rAdjust", int64(ka.RAdjust), int64(kb.RAdjust))
		d.u("kagura.rEvict", uint64(ka.REvict), uint64(kb.REvict))
		d.i("kagura.counter", int64(ka.Counter), int64(kb.Counter))
		d.i("kagura.mode", int64(ka.Mode), int64(kb.Mode))
		d.u("kagura.cmLost", uint64(ka.CmLost), uint64(kb.CmLost))
		d.u("kagura.cmMemOps", uint64(ka.CmMemOps), uint64(kb.CmMemOps))
		d.u("kagura.rmMemOps", uint64(ka.RmMemOps), uint64(kb.RmMemOps))
		d.i("kagura.historyDepth", int64(len(ka.History)), int64(len(kb.History)))
		d.i("kagura.stats.cyclesSeen", ka.Stats.CyclesSeen, kb.Stats.CyclesSeen)
		d.i("kagura.stats.rmEntries", ka.Stats.RMEntries, kb.Stats.RMEntries)
		d.i("kagura.stats.memOps", ka.Stats.MemOps, kb.Stats.MemOps)
		d.i("kagura.stats.memOpsInRM", ka.Stats.MemOpsInRM, kb.Stats.MemOpsInRM)
		d.i("kagura.stats.adjustApplied", ka.Stats.AdjustApplied, kb.Stats.AdjustApplied)
		d.i("kagura.stats.thresholdRaises", ka.Stats.ThresholdRaises, kb.Stats.ThresholdRaises)
		d.i("kagura.stats.thresholdDrops", ka.Stats.ThresholdDrops, kb.Stats.ThresholdDrops)
	}
	return d.out
}
