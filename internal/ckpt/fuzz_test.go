package ckpt

import (
	"reflect"
	"testing"
)

// FuzzCkptDecode drives Decode with arbitrary bytes. The contract under
// fuzz: decode never panics and never silently misreads — it either errors,
// or returns a snapshot whose re-encoding decodes back to the same value
// (encode∘decode is a fixed point). Valid encodings are seeded so the fuzzer
// mutates deep into the format rather than bouncing off the magic.
func FuzzCkptDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	for _, app := range []string{"jpeg", "gsm"} {
		snap, _ := testSnapshot(f, app, 200_000)
		data, err := Encode(snap)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		// Round-trip: whatever structure the input described, the codec must
		// reproduce it exactly.
		out, err := Encode(snap)
		if err != nil {
			t.Fatalf("decoded snapshot failed to encode: %v", err)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatal("encode/decode fixed point violated")
		}
	})
}
