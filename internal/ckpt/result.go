package ckpt

import (
	"fmt"

	"kagura/internal/ehs"
)

// ResultMagic identifies a serialized standalone result (the payload of a
// store KindResult entry), distinct from a full checkpoint's Magic.
const ResultMagic = "KAGRES\x00\x00"

// EncodeResult serializes one simulation result to the same versioned binary
// format checkpoints embed it in — deterministic, so the persistent store's
// byte-identical restart invariant holds: equal results produce equal bytes.
func EncodeResult(res *ehs.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("ckpt: nil result")
	}
	w := &writer{buf: make([]byte, 0, 1<<10)}
	w.raw([]byte(ResultMagic))
	w.u16(Version)
	w.result(res)
	return w.buf, nil
}

// DecodeResult parses a standalone result. Like Decode, it is hardened
// against arbitrary input: truncation, oversized length prefixes, and
// trailing bytes are errors; no input panics.
func DecodeResult(data []byte) (*ehs.Result, error) {
	r := &reader{data: data}
	if magic := r.take(len(ResultMagic)); r.err == nil && string(magic) != ResultMagic {
		return nil, fmt.Errorf("ckpt: bad result magic %q", magic)
	}
	if v := r.u16(); r.err == nil && v != Version {
		return nil, fmt.Errorf("ckpt: unknown result version %d (this build reads version %d)", v, Version)
	}
	res := &ehs.Result{}
	r.result(res)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after result", len(r.data)-r.off)
	}
	return res, nil
}
