// Package ckpt serializes simulator snapshots (ehs.Snapshot) to a versioned,
// deterministic binary format — the on-disk checkpoint that lets a run be
// taken once, inspected, diffed, and resumed or forked later (DESIGN.md §9).
//
// Format (version 1): an 8-byte magic, a little-endian uint16 version, then
// the snapshot fields in fixed order. All integers are little-endian and
// fixed-width; floats are IEEE-754 bit patterns (so encode∘decode is the
// identity on every value, including NaN payloads); slices and strings are
// length-prefixed. Encoding the same snapshot always yields the same bytes
// (the NVM block list is address-sorted at capture).
//
// Decode is hardened against arbitrary input: every length prefix is checked
// against the bytes actually remaining before allocation, unknown versions
// and trailing bytes are errors, and no input can cause a panic (FuzzCkptDecode
// holds the codec to that). Decoding validates structure only; semantic
// validation — cache geometry, counter ranges, charge ceilings — happens in
// Simulator.RestoreSnapshot, which is the only way decoded state reaches a
// simulation.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"

	"kagura/internal/acc"
	"kagura/internal/cache"
	"kagura/internal/ehs"
	"kagura/internal/faultinject"
	"kagura/internal/kagura"
	"kagura/internal/nvm"
)

// fpDecode lets a chaos plan corrupt checkpoint bytes before parsing,
// exercising Decode's hardening (and the service's degrade-to-cold path)
// end to end. A no-op unless a plan arms "ckpt.decode".
var fpDecode = faultinject.Point("ckpt.decode")

// Magic identifies a kagura checkpoint file.
const Magic = "KAGCKPT\x00"

// Version is the current format version. Decode refuses any other value:
// format changes bump the version, and old readers must fail loudly rather
// than misinterpret newer layouts (forward-compat policy in DESIGN.md §9).
const Version uint16 = 1

// maxHashLen bounds the config-fingerprint string (SHA-256 hex is 64 bytes).
const maxHashLen = 128

// Encode serializes a snapshot. The output is deterministic: equal snapshots
// produce equal bytes.
func Encode(snap *ehs.Snapshot) ([]byte, error) {
	if err := fpEncode.FireErr(); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	if snap == nil {
		return nil, fmt.Errorf("ckpt: nil snapshot")
	}
	if len(snap.ConfigHash) > maxHashLen {
		return nil, fmt.Errorf("ckpt: config hash is %d bytes, limit %d", len(snap.ConfigHash), maxHashLen)
	}
	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.raw([]byte(Magic))
	w.u16(Version)
	w.str(snap.ConfigHash)

	w.i64(snap.Time)
	w.i64(snap.PoweredCycles)
	w.i64(snap.Pos)
	w.i64(snap.LastBoundary)
	w.i64(snap.CurCommitted)
	w.i64(snap.CurLoads)
	w.i64(snap.CurStores)
	w.i64(snap.CurStartPowered)
	w.u32(snap.FetchBufBase)
	w.bool(snap.FetchBufValid)

	w.result(&snap.Res)

	w.f64(snap.Cap.Energy)
	w.f64(snap.Cap.Leaked)
	w.f64(snap.Cap.Harvested)

	w.u32(uint32(len(snap.Mem.Blocks)))
	for _, b := range snap.Mem.Blocks {
		w.u32(b.Addr)
		w.bytes(b.Data)
	}
	w.i64(snap.Mem.Reads)
	w.i64(snap.Mem.Writes)

	w.cacheState(&snap.ICache)
	w.cacheState(&snap.DCache)

	w.bool(snap.Pred != nil)
	if snap.Pred != nil {
		w.i64(int64(snap.Pred.Counter))
		w.i64(snap.Pred.AvoidedMisses)
		w.i64(snap.Pred.PenalizedHits)
	}
	w.bool(snap.Kag != nil)
	if snap.Kag != nil {
		k := snap.Kag
		w.u32(k.RMem)
		w.u32(k.RPrev)
		w.u32(k.RThres)
		w.u32(uint32(k.RAdjust))
		w.u32(k.REvict)
		w.i64(int64(k.Counter))
		w.u16(uint16(k.Mode))
		w.u32(k.CmLost)
		w.u32(k.CmMemOps)
		w.u32(k.RmMemOps)
		w.u32(uint32(len(k.History)))
		for _, h := range k.History {
			w.u32(h)
		}
		w.i64(k.Stats.CyclesSeen)
		w.i64(k.Stats.RMEntries)
		w.i64(k.Stats.MemOps)
		w.i64(k.Stats.MemOpsInRM)
		w.i64(k.Stats.AdjustApplied)
		w.i64(k.Stats.ThresholdRaises)
		w.i64(k.Stats.ThresholdDrops)
	}
	return w.buf, nil
}

// Decode parses a checkpoint. Any malformation — wrong magic, unknown
// version, truncation, oversized length prefixes, trailing bytes — is an
// error; no input panics.
func Decode(data []byte) (*ehs.Snapshot, error) {
	data = fpDecode.CorruptBytes(data)
	r := &reader{data: data}
	if magic := r.take(len(Magic)); r.err == nil && string(magic) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", magic)
	}
	if v := r.u16(); r.err == nil && v != Version {
		return nil, fmt.Errorf("ckpt: unknown format version %d (this build reads version %d)", v, Version)
	}
	snap := &ehs.Snapshot{}
	snap.ConfigHash = r.str(maxHashLen)

	snap.Time = r.i64()
	snap.PoweredCycles = r.i64()
	snap.Pos = r.i64()
	snap.LastBoundary = r.i64()
	snap.CurCommitted = r.i64()
	snap.CurLoads = r.i64()
	snap.CurStores = r.i64()
	snap.CurStartPowered = r.i64()
	snap.FetchBufBase = r.u32()
	snap.FetchBufValid = r.bool()

	r.result(&snap.Res)

	snap.Cap.Energy = r.f64()
	snap.Cap.Leaked = r.f64()
	snap.Cap.Harvested = r.f64()

	// Each block is at least addr(4) + length prefix(4) bytes.
	nBlocks := r.count(8)
	if r.err == nil && nBlocks > 0 {
		snap.Mem.Blocks = make([]nvm.BlockState, nBlocks)
		for i := range snap.Mem.Blocks {
			snap.Mem.Blocks[i].Addr = r.u32()
			snap.Mem.Blocks[i].Data = r.bytes()
		}
	}
	snap.Mem.Reads = r.i64()
	snap.Mem.Writes = r.i64()

	r.cacheState(&snap.ICache)
	r.cacheState(&snap.DCache)

	if r.bool() {
		p := &acc.Snapshot{}
		p.Counter = int(r.i64())
		p.AvoidedMisses = r.i64()
		p.PenalizedHits = r.i64()
		snap.Pred = p
	}
	if r.bool() {
		k := &kagura.Snapshot{}
		k.RMem = r.u32()
		k.RPrev = r.u32()
		k.RThres = r.u32()
		k.RAdjust = int32(r.u32())
		k.REvict = r.u32()
		k.Counter = int(r.i64())
		k.Mode = kagura.Mode(r.u16())
		k.CmLost = r.u32()
		k.CmMemOps = r.u32()
		k.RmMemOps = r.u32()
		nHist := r.count(4)
		if r.err == nil && nHist > 0 {
			k.History = make([]uint32, nHist)
			for i := range k.History {
				k.History[i] = r.u32()
			}
		}
		k.Stats.CyclesSeen = r.i64()
		k.Stats.RMEntries = r.i64()
		k.Stats.MemOps = r.i64()
		k.Stats.MemOpsInRM = r.i64()
		k.Stats.AdjustApplied = r.i64()
		k.Stats.ThresholdRaises = r.i64()
		k.Stats.ThresholdDrops = r.i64()
		snap.Kag = k
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after snapshot", len(r.data)-r.off)
	}
	return snap, nil
}

// writer accumulates the encoding. Appends cannot fail.
type writer struct {
	buf []byte
}

func (w *writer) raw(b []byte)  { w.buf = append(w.buf, b...) }
func (w *writer) u16(v uint16)  { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}
func (w *writer) bytes(b []byte) { w.u32(uint32(len(b))); w.raw(b) }
func (w *writer) str(s string)   { w.bytes([]byte(s)) }

func (w *writer) stats(s *cache.Stats) {
	w.i64(s.Accesses)
	w.i64(s.Hits)
	w.i64(s.Misses)
	w.i64(s.HitsCompressed)
	w.i64(s.HitsBeyondWays)
	w.i64(s.Compressions)
	w.i64(s.Decompressions)
	w.i64(s.Evictions)
	w.i64(s.DirtyEvictions)
	w.i64(s.ShadowHits)
	w.i64(s.Fills)
	w.i64(s.FillsCompressed)
	w.i64(s.DecayEvictions)
	w.i64(s.PrefetchFills)
}

func (w *writer) result(res *ehs.Result) {
	w.bool(res.Completed)
	w.f64(res.ExecSeconds)
	w.i64(res.Committed)
	w.i64(res.Executed)
	w.i64(res.PowerCycles)
	w.f64(res.Energy.Compress)
	w.f64(res.Energy.Decompress)
	w.f64(res.Energy.CacheOther)
	w.f64(res.Energy.Memory)
	w.f64(res.Energy.Checkpoint)
	w.f64(res.Energy.Others)
	w.stats(&res.ICache)
	w.stats(&res.DCache)
	w.i64(res.Compressions)
	w.i64(res.Decompressions)
	w.i64(res.KaguraRMEntries)
	w.i64(res.Prefetches)
	w.u32(uint32(len(res.Cycles)))
	for _, c := range res.Cycles {
		w.i64(c.Committed)
		w.i64(c.Loads)
		w.i64(c.Stores)
		w.i64(c.Cycles)
	}
	w.i64(res.CheckpointedBlocks)
	w.f64(res.CapacitorLeakJoules)
}

func (w *writer) cacheState(st *cache.State) {
	w.u32(uint32(len(st.Sets)))
	for _, set := range st.Sets {
		w.u16(uint16(len(set.Lines)))
		for _, ln := range set.Lines {
			w.bool(ln.Valid)
			w.u32(ln.Addr)
			w.bool(ln.Dirty)
			w.bool(ln.Compressed)
			w.u16(uint16(ln.Segments))
			w.i64(ln.LastUse)
			w.bytes(ln.Data)
		}
		w.u16(uint16(len(set.Order)))
		for _, idx := range set.Order {
			w.u16(uint16(idx))
		}
		w.u16(uint16(len(set.Shadow)))
		for _, addr := range set.Shadow {
			w.u32(addr)
		}
	}
	w.stats(&st.Stats)
	w.u64(st.VictimSeed)
}

// reader parses the encoding, carrying the first error; every accessor is a
// no-op once err is set, so decode logic reads straight-line.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format+" at offset %d", append(args, r.off)...)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail("truncated: need %d bytes, have %d", n, r.remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		r.fail("invalid boolean byte %#x", b[0])
		return false
	}
	return b[0] == 1
}

// count reads a u32 element count and bounds it by the bytes remaining: a
// hostile prefix can never force an allocation larger than the input itself.
func (r *reader) count(minElemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n*minElemBytes > r.remaining() {
		r.fail("count %d exceeds remaining input (%d bytes, ≥%d each)", n, r.remaining(), minElemBytes)
		return 0
	}
	return n
}

// count16 is count for u16-prefixed collections.
func (r *reader) count16(minElemBytes int) int {
	n := int(r.u16())
	if r.err != nil {
		return 0
	}
	if n*minElemBytes > r.remaining() {
		r.fail("count %d exceeds remaining input (%d bytes, ≥%d each)", n, r.remaining(), minElemBytes)
		return 0
	}
	return n
}

func (r *reader) bytes() []byte {
	n := r.count(1)
	b := r.take(n)
	if b == nil || n == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) str(maxLen int) string {
	n := r.count(1)
	if r.err == nil && n > maxLen {
		r.fail("string length %d exceeds limit %d", n, maxLen)
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *reader) stats(s *cache.Stats) {
	s.Accesses = r.i64()
	s.Hits = r.i64()
	s.Misses = r.i64()
	s.HitsCompressed = r.i64()
	s.HitsBeyondWays = r.i64()
	s.Compressions = r.i64()
	s.Decompressions = r.i64()
	s.Evictions = r.i64()
	s.DirtyEvictions = r.i64()
	s.ShadowHits = r.i64()
	s.Fills = r.i64()
	s.FillsCompressed = r.i64()
	s.DecayEvictions = r.i64()
	s.PrefetchFills = r.i64()
}

func (r *reader) result(res *ehs.Result) {
	res.Completed = r.bool()
	res.ExecSeconds = r.f64()
	res.Committed = r.i64()
	res.Executed = r.i64()
	res.PowerCycles = r.i64()
	res.Energy.Compress = r.f64()
	res.Energy.Decompress = r.f64()
	res.Energy.CacheOther = r.f64()
	res.Energy.Memory = r.f64()
	res.Energy.Checkpoint = r.f64()
	res.Energy.Others = r.f64()
	r.stats(&res.ICache)
	r.stats(&res.DCache)
	res.Compressions = r.i64()
	res.Decompressions = r.i64()
	res.KaguraRMEntries = r.i64()
	res.Prefetches = r.i64()
	// Each cycle record is 4×8 bytes.
	n := r.count(32)
	if r.err == nil && n > 0 {
		res.Cycles = make([]ehs.CycleRecord, n)
		for i := range res.Cycles {
			res.Cycles[i].Committed = r.i64()
			res.Cycles[i].Loads = r.i64()
			res.Cycles[i].Stores = r.i64()
			res.Cycles[i].Cycles = r.i64()
		}
	}
	res.CheckpointedBlocks = r.i64()
	res.CapacitorLeakJoules = r.f64()
}

func (r *reader) cacheState(st *cache.State) {
	// Each set carries at least three u16 prefixes.
	nSets := r.count(6)
	if r.err != nil || nSets == 0 {
		return
	}
	st.Sets = make([]cache.SetState, nSets)
	for si := range st.Sets {
		set := &st.Sets[si]
		// Each line is at least 1+4+1+1+2+8+4 = 21 bytes.
		nLines := r.count16(21)
		if r.err != nil {
			return
		}
		if nLines > 0 {
			set.Lines = make([]cache.LineState, nLines)
			for li := range set.Lines {
				ln := &set.Lines[li]
				ln.Valid = r.bool()
				ln.Addr = r.u32()
				ln.Dirty = r.bool()
				ln.Compressed = r.bool()
				ln.Segments = int(r.u16())
				ln.LastUse = r.i64()
				ln.Data = r.bytes()
			}
		}
		nOrder := r.count16(2)
		if r.err != nil {
			return
		}
		if nOrder > 0 {
			set.Order = make([]int, nOrder)
			for i := range set.Order {
				set.Order[i] = int(r.u16())
			}
		}
		nShadow := r.count16(4)
		if r.err != nil {
			return
		}
		if nShadow > 0 {
			set.Shadow = make([]uint32, nShadow)
			for i := range set.Shadow {
				set.Shadow[i] = r.u32()
			}
		}
	}
	r.stats(&st.Stats)
	st.VictimSeed = r.u64()
}
