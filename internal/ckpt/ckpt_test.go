package ckpt

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"kagura/internal/compress"
	"kagura/internal/ehs"
	"kagura/internal/kagura"
	"kagura/internal/powertrace"
	"kagura/internal/workload"
)

// testConfig builds the full stack (ACC + Kagura + cycle log) for an app.
func testConfig(t testing.TB, app string) ehs.Config {
	t.Helper()
	w, err := workload.ByName(app, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ehs.Default(w, powertrace.RFHome(1)).WithACC(compress.BDI{}).WithKagura(kagura.DefaultConfig())
	cfg.CollectCycleLog = true
	return cfg
}

// totalCycles returns the straight-through run's cycle count; tests snapshot
// at fractions of it. Note a cycle target inside a recharge outage resolves
// to the end of the sleep (one step can advance time across the whole dead
// period), so distinct snapshot points should sit well apart.
func totalCycles(t testing.TB, app string) int64 {
	t.Helper()
	res, err := ehs.Run(testConfig(t, app))
	if err != nil {
		t.Fatal(err)
	}
	return int64(res.ExecSeconds / ehs.CyclePeriod)
}

// midCycle returns half the straight-through run's cycle count.
func midCycle(t testing.TB, app string) int64 {
	return totalCycles(t, app) / 2
}

// testSnapshot runs the full stack to the given cycle and captures a state
// where caches hold compressed lines, power cycles have completed, and both
// controllers carry history.
func testSnapshot(t testing.TB, app string, cycle int64) (*ehs.Snapshot, ehs.Config) {
	t.Helper()
	cfg := testConfig(t, app)
	s, err := ehs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunToCycle(context.Background(), cycle); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap, cfg
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap, _ := testSnapshot(t, "jpeg", midCycle(t, "jpeg"))
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("decode(encode(snap)) != snap")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	snap, _ := testSnapshot(t, "gsm", 1_000_000)
	a, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding the same snapshot twice produced different bytes")
	}
}

// TestDecodedSnapshotResumes: the end-to-end property the format exists for
// — a snapshot that went through bytes resumes to the same Result as the
// uninterrupted run.
func TestDecodedSnapshotResumes(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, "typeset")
	straight, err := ehs.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := int64(straight.ExecSeconds/ehs.CyclePeriod) / 2
	snap, _ := testSnapshot(t, "typeset", mid)

	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ehs.RunFrom(ctx, decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(straight, resumed) {
		t.Error("run resumed from decoded checkpoint diverged from straight-through run")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	snap, _ := testSnapshot(t, "jpeg", 500_000)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short magic":     data[:4],
		"bad magic":       append([]byte("NOTCKPT\x00"), data[8:]...),
		"future version":  append(append([]byte(Magic), 0xFF, 0xFF), data[10:]...),
		"truncated":       data[:len(data)/2],
		"trailing bytes":  append(append([]byte(nil), data...), 0),
		"oversized count": append(append([]byte(nil), data[:10]...), 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for name, input := range cases {
		if _, err := Decode(input); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestDescribe(t *testing.T) {
	snap, _ := testSnapshot(t, "gsm", 1_000_000)
	desc := Describe(snap)
	for _, want := range []string{snap.ConfigHash, "capacitor:", "icache:", "kagura:", "acc:"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe output missing %q:\n%s", want, desc)
		}
	}
	if Describe(nil) == "" {
		t.Error("Describe(nil) must not be empty")
	}
}

func TestDiff(t *testing.T) {
	total := totalCycles(t, "jpeg")
	a, _ := testSnapshot(t, "jpeg", total/2)
	b, _ := testSnapshot(t, "jpeg", total/2)
	if diffs := Diff(a, b); len(diffs) != 0 {
		t.Errorf("identical snapshots diff non-empty: %v", diffs)
	}
	later, _ := testSnapshot(t, "jpeg", total*7/8)
	diffs := Diff(a, later)
	if len(diffs) == 0 {
		t.Fatal("snapshots at different cycles diff empty")
	}
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"time:", "pos:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff missing %q:\n%s", want, joined)
		}
	}
	if diffs := Diff(nil, a); len(diffs) != 1 {
		t.Errorf("nil vs snapshot should yield one presence diff, got %v", diffs)
	}
	if diffs := Diff(nil, nil); diffs != nil {
		t.Errorf("nil vs nil should be empty, got %v", diffs)
	}
	// Bit-level float changes must surface even when %g would print equal.
	c, _ := testSnapshot(t, "jpeg", total/2)
	c.Cap.Energy += 1e-18
	if diffs := Diff(a, c); len(diffs) == 0 {
		t.Error("sub-printable float change not reported")
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("Encode(nil) must fail")
	}
}
