package kagura_test

import (
	"fmt"
	"strings"

	"kagura"
)

// The godoc examples double as executable documentation: each runs a real
// simulation (tiny scale) and asserts its printed output.

// Example runs the paper's default system on one workload, with and without
// the intermittence-aware compression stack.
func Example() {
	app, _ := kagura.Workload("jpeg", 0.05)
	trace, _ := kagura.Trace("RFHome", 1)

	base, _ := kagura.Run(kagura.DefaultConfig(app, trace))
	kag, _ := kagura.Run(kagura.DefaultConfig(app, trace).
		WithACC(kagura.BDI{}).
		WithKagura(kagura.DefaultController()))

	fmt.Println("completed:", base.Completed && kag.Completed)
	fmt.Println("compressions without Kagura gating:", kag.Compressions > 0)
	// Output:
	// completed: true
	// compressions without Kagura gating: true
}

// ExampleWorkloadFromJSON defines a custom application in JSON and runs it.
func ExampleWorkloadFromJSON() {
	def := `{
	  "name": "blink",
	  "seed": 1,
	  "regions": [{"base": 268435456, "sizeWords": 32, "hotWords": 32, "class": "narrow"}],
	  "phases": [{
	    "iterations": 2000,
	    "codeBase": 65536,
	    "codeWords": 24,
	    "body": ["load hot 0", "arith", "arith", "store hot 0"]
	  }]
	}`
	app, err := kagura.WorkloadFromJSON(strings.NewReader(def))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	trace, _ := kagura.Trace("Thermal", 3)
	res, _ := kagura.Run(kagura.DefaultConfig(app, trace))
	fmt.Println(app.Name, "committed:", res.Committed)
	// Output:
	// blink committed: 8000
}

// ExampleNewLab regenerates one of the paper's static analyses.
func ExampleNewLab() {
	lab := kagura.NewLab(kagura.LabOptions{Scale: 0.05, Seeds: []uint64{1}})
	res, err := lab.Run("area")
	if err != nil {
		fmt.Println(err)
		return
	}
	tbl := res.Render()
	fmt.Println(tbl.ID, "rows:", len(tbl.Rows))
	// Output:
	// area rows: 3
}
