// Package kagura is a from-scratch reproduction of "Intermittence-Aware
// Cache Compression" (HPCA 2026): the Kagura controller, the adaptive cache
// compression (ACC) baseline it extends, and the complete energy-harvesting-
// system (EHS) simulation substrate the paper evaluates on — power traces,
// capacitor energy buffer, compressed SRAM caches, NVM main memory, JIT
// checkpointing, and the 20-application workload suite.
//
// # Quick start
//
//	app, _ := kagura.Workload("jpeg", 1.0)
//	trace, _ := kagura.Trace("RFHome", 1)
//
//	base := kagura.DefaultConfig(app, trace)             // no compression
//	withKagura := base.WithACC(kagura.BDI{}).
//		WithKagura(kagura.DefaultController())           // ACC + Kagura
//
//	b, _ := kagura.Run(base)
//	k, _ := kagura.Run(withKagura)
//	fmt.Printf("speedup %+.2f%%\n", 100*k.Speedup(b))
//
// # Reproducing the paper
//
//	lab := kagura.NewLab(kagura.DefaultOptions())
//	res, _ := lab.Run("fig13")
//	fmt.Print(res.Render())
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for measured-vs-paper results.
package kagura

import (
	"context"
	"io"
	"net/http"

	"kagura/internal/campaign"
	"kagura/internal/compress"
	"kagura/internal/ehs"
	"kagura/internal/experiments"
	"kagura/internal/journal"
	"kagura/internal/kagura"
	"kagura/internal/nvm"
	"kagura/internal/obs"
	"kagura/internal/powertrace"
	"kagura/internal/simsvc"
	"kagura/internal/workload"
)

// Simulation configuration and results.
type (
	// SimConfig fully describes one simulation run.
	SimConfig = ehs.Config
	// Result is everything a run produces: timing, energy breakdown, cache
	// statistics, power-cycle log.
	Result = ehs.Result
	// EnergyBreakdown splits consumption into Fig 16's six categories.
	EnergyBreakdown = ehs.EnergyBreakdown
	// Design selects the EHS crash-consistency architecture.
	Design = ehs.Design
	// Oracle drives the ideal intermittence-aware compressor (two-phase
	// record/replay).
	Oracle = ehs.Oracle
)

// EHS designs (§VIII-H1).
const (
	NVSRAMCache = ehs.NVSRAMCache
	NvMR        = ehs.NvMR
	SweepCache  = ehs.SweepCache
)

// Controller configuration.
type (
	// ControllerConfig parameterizes the Kagura controller.
	ControllerConfig = kagura.Config
	// Controller is Kagura's register-level hardware state.
	Controller = kagura.Controller
	// Policy is the R_thres adaptation policy (AIMD default).
	Policy = kagura.Policy
	// Trigger selects memory-count or voltage triggering.
	Trigger = kagura.Trigger
)

// Adaptation policies and triggers (§VIII-H2, H4).
const (
	AIMD = kagura.AIMD
	MIAD = kagura.MIAD
	AIAD = kagura.AIAD
	MIMD = kagura.MIMD

	TriggerMem     = kagura.TriggerMem
	TriggerVoltage = kagura.TriggerVoltage
)

// Compression codecs (§II-B).
type (
	// Codec is a lossless cache-block compressor.
	Codec = compress.Codec
	// BDI is Base-Delta-Immediate (the paper's default).
	BDI = compress.BDI
	// FPC is Frequent Pattern Compression.
	FPC = compress.FPC
	// CPack is C-Pack.
	CPack = compress.CPack
	// DZC is Dynamic Zero Compression.
	DZC = compress.DZC
	// BPC is Bit-Plane Compression (§IX related work).
	BPC = compress.BPC
	// FVC is a per-block Frequent Value Compression variant (§IX).
	FVC = compress.FVC
)

// Workload modeling.
type (
	// App is a synthetic application: a pure function from instruction index
	// to committed instruction.
	App = workload.App
	// Region is a data region with a value class.
	Region = workload.Region
	// Phase is a loop nest of an App.
	Phase = workload.Phase
	// Slot is one position in a loop body.
	Slot = workload.Slot
	// ValueClass describes a region's value population (compressibility).
	ValueClass = workload.Class
)

// Value classes for custom workloads.
const (
	ClassZeros   = workload.ClassZeros
	ClassNarrow  = workload.ClassNarrow
	ClassText    = workload.ClassText
	ClassPointer = workload.ClassPointer
	ClassRandom  = workload.ClassRandom
)

// Access patterns and slot kinds for custom workloads.
const (
	PatSeq    = workload.PatSeq
	PatStride = workload.PatStride
	PatHot    = workload.PatHot
	PatRand   = workload.PatRand

	Arith = workload.Arith
	Load  = workload.Load
	Store = workload.Store
)

// Power traces.
type (
	// PowerTrace is an ambient power trace (one sample per 10µs).
	PowerTrace = powertrace.Trace
)

// NVM technologies (§VIII-H12).
type NVMKind = nvm.Kind

const (
	ReRAM  = nvm.ReRAM
	PCM    = nvm.PCM
	STTRAM = nvm.STTRAM
)

// Experiment harness.
type (
	// Lab runs paper experiments with memoized simulations.
	Lab = experiments.Lab
	// LabOptions configures experiment fidelity.
	LabOptions = experiments.Options
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
)

// Simulation service (internal/simsvc): a concurrent scheduler with a
// content-addressed result cache, serving both programmatic clients (the Lab)
// and the kagura-serve HTTP API.
type (
	// SimService schedules simulation jobs on a bounded worker pool and
	// memoizes results by canonical configuration hash.
	SimService = simsvc.Service
	// ServiceOptions sizes the service (workers, queue, timeouts).
	ServiceOptions = simsvc.Options
	// RunSpec is the JSON description of one run (HTTP body, kagura-sim
	// -json).
	RunSpec = simsvc.RunSpec
	// RunJob is one scheduled simulation.
	RunJob = simsvc.Job
	// JobStatus is a job's wire-level snapshot.
	JobStatus = simsvc.JobStatus
	// RunResult is the JSON result schema shared by the HTTP API and
	// kagura-sim -json.
	RunResult = simsvc.RunResult
	// RunComparison relates a run to its compressor-free baseline.
	RunComparison = simsvc.Comparison
	// ServiceMetrics is a snapshot of the service counters.
	ServiceMetrics = simsvc.MetricsSnapshot
	// ForkPoint warm-starts a batch from a shared checkpointed prefix
	// (SimService.SubmitBatchFork, POST /v1/batch forkPoint field).
	ForkPoint = simsvc.ForkPoint
	// ServiceErrorCode is the machine-readable error taxonomy carried in the
	// `code` field of /v1 error responses and kagura_errors_total{code}.
	ServiceErrorCode = simsvc.ErrorCode
	// TraceSpan is one phase interval of a job's trace (JobStatus.Trace):
	// queued/coalesced/cached/warmstart/compute/backoff, contiguous, summing
	// to the job's wall time.
	TraceSpan = obs.Span
)

// ClassifyServiceError maps any service error to its taxonomy code
// (DESIGN.md §10.3).
func ClassifyServiceError(err error) ServiceErrorCode { return simsvc.Classify(err) }

// DefaultConfig returns the paper's Table I system for an app and trace:
// 256B 2-way I/D caches with 32B blocks, 4.7µF capacitor, 16MB ReRAM,
// NVSRAMCache checkpointing, no compression.
func DefaultConfig(app *App, trace *PowerTrace) SimConfig {
	return ehs.Default(app, trace)
}

// DefaultController returns the paper's default Kagura settings (AIMD, 10%
// step, 2-bit counter, single-cycle history, memory trigger).
func DefaultController() ControllerConfig { return kagura.DefaultConfig() }

// Run executes one simulation to completion.
func Run(cfg SimConfig) (*Result, error) { return ehs.Run(cfg) }

// RunContext executes one simulation to completion, honoring cancellation:
// the simulator observes ctx at power-cycle boundaries and every few thousand
// instructions.
func RunContext(ctx context.Context, cfg SimConfig) (*Result, error) {
	return ehs.RunContext(ctx, cfg)
}

// NewService creates a simulation service (see cmd/kagura-serve for the HTTP
// frontend). Close it when done.
func NewService(opts ServiceOptions) *SimService { return simsvc.New(opts) }

// DefaultServiceOptions returns production service defaults.
func DefaultServiceOptions() ServiceOptions { return simsvc.DefaultOptions() }

// ServiceHandler returns the service's HTTP API (POST /v1/run, POST
// /v1/batch, GET /v1/jobs/{id}, GET /v1/workloads, GET /healthz, GET
// /readyz, GET /metrics).
func ServiceHandler(svc *SimService) http.Handler { return simsvc.NewHandler(svc) }

// Campaign engine (internal/campaign): declarative design-space sweeps over
// RunSpec knobs, executed as fork-batches against a SimService, with
// Pareto-frontier extraction and byte-stable JSON/CSV export (DESIGN.md §13).
type (
	// CampaignSpec is the JSON description of one sweep campaign.
	CampaignSpec = campaign.Spec
	// CampaignAxis is one named sweep dimension of a campaign.
	CampaignAxis = campaign.Axis
	// CampaignObjective names the metric a campaign search optimizes.
	CampaignObjective = campaign.Objective
	// CampaignRunner executes campaigns synchronously on a SimService.
	CampaignRunner = campaign.Runner
	// CampaignReport is a finished campaign's deterministic result.
	CampaignReport = campaign.Report
	// CampaignPoint is one evaluated point of a campaign report.
	CampaignPoint = campaign.PointReport
	// CampaignPointMetrics is the per-point metric slice a report keeps.
	CampaignPointMetrics = campaign.PointMetrics
	// CampaignManager tracks asynchronously-running campaigns (the HTTP API).
	CampaignManager = campaign.Manager
	// CampaignStatus is a campaign's wire-level snapshot.
	CampaignStatus = campaign.Status
)

// DecodeCampaignSpec reads, bounds-checks, and validates a campaign spec.
func DecodeCampaignSpec(r io.Reader) (*CampaignSpec, error) { return campaign.DecodeSpec(r) }

// CampaignParams lists the sweepable RunSpec knobs, sorted.
func CampaignParams() []string { return campaign.ParamNames() }

// NewCampaignManager creates a manager executing campaigns on svc. Close it
// before closing the service.
func NewCampaignManager(svc *SimService) *CampaignManager { return campaign.NewManager(svc) }

// Journal is the durable crash journal (internal/journal): an append-only,
// CRC-framed intent log the service and campaign manager write through, so a
// killed process can replay unsettled jobs and resume interrupted campaigns
// on restart (DESIGN.md §14).
type Journal = journal.Journal

// OpenJournal opens (or creates) the crash journal under dir, recovering
// torn tails and quarantining corrupt segments. The caller owns it: close it
// after the service and campaign manager that write through it.
func OpenJournal(dir string) (*Journal, error) { return journal.Open(dir) }

// NewCampaignManagerJournaled is NewCampaignManager with crash journaling:
// campaigns checkpoint each wave through jnl and ResumeFromJournal relaunches
// whatever a previous process left unfinished.
func NewCampaignManagerJournaled(svc *SimService, jnl *Journal) *CampaignManager {
	return campaign.NewManagerJournaled(svc, jnl)
}

// CampaignHandler layers the campaign API (POST /v1/campaigns, GET
// /v1/campaigns/{id}, combined /metrics) over the service handler.
func CampaignHandler(m *CampaignManager, base http.Handler) http.Handler {
	return campaign.NewHandler(m, base)
}

// ConfigKey returns the content-addressed cache key of a configuration: a
// canonical hash over every behavior-determining input.
func ConfigKey(cfg SimConfig) string { return simsvc.ConfigKey(cfg) }

// NewRunResult packages a raw simulation result in the service's wire schema
// (kagura-sim -json uses this to match the HTTP API byte-for-byte).
func NewRunResult(spec *RunSpec, key string, cached bool, res *Result) *RunResult {
	return simsvc.NewRunResult(spec, key, cached, res)
}

// NewOracle creates an empty oracle for ideal-compressor studies.
func NewOracle() *Oracle { return ehs.NewOracle() }

// Workload returns one of the 20 evaluation applications at the given length
// scale (1.0 ≈ 600k instructions).
func Workload(name string, scale float64) (*App, error) {
	return workload.ByName(name, scale)
}

// Workloads lists the application names in evaluation order.
func Workloads() []string { return workload.Names() }

// WorkloadFromJSON builds a custom application from a JSON definition (see
// internal/workload's FromJSON for the schema; kagura-sim's -workload flag
// consumes the same format).
func WorkloadFromJSON(r io.Reader) (*App, error) { return workload.FromJSON(r) }

// Suite returns all 20 applications at the given scale.
func Suite(scale float64) []*App { return workload.Suite(scale) }

// Trace returns a built-in ambient power trace ("RFHome", "Solar",
// "Thermal") synthesized from the given seed.
func Trace(name string, seed uint64) (*PowerTrace, error) {
	return powertrace.ByName(name, seed)
}

// Compressor returns a codec by name ("BDI", "FPC", "C-Pack", "DZC").
func Compressor(name string) (Codec, error) { return compress.ByName(name) }

// Compressors lists the codec names of the paper's Fig 23 study.
func Compressors() []string { return compress.Names() }

// CompressorsExtended returns every implemented codec, including the §IX
// related compressors (BPC, FVC).
func CompressorsExtended() []Codec { return compress.Extended() }

// NewLab creates an experiment lab backed by its own simulation service.
func NewLab(opts LabOptions) *Lab { return experiments.New(opts) }

// NewLabWithService creates a lab that shares an existing simulation
// service's worker pool and result cache.
func NewLabWithService(svc *SimService, opts LabOptions) *Lab {
	return experiments.NewWithService(svc, opts)
}

// DefaultOptions returns full-fidelity experiment options (all apps, three
// trace seeds, full-length workloads).
func DefaultOptions() LabOptions { return experiments.Defaults() }

// QuickOptions returns reduced experiment options for fast smoke runs.
func QuickOptions() LabOptions { return experiments.Quick() }

// Experiments lists the experiment ids in DESIGN.md order.
func Experiments() []string { return experiments.IDs() }
