package kagura_test

// One benchmark per table and figure of the paper's evaluation (§VIII).
// Each benchmark regenerates its experiment through the Lab harness and
// prints the resulting table once, so `go test -bench=. -benchmem` both
// times the reproduction and emits the paper-comparison numbers.
//
// All benchmarks share a single memoized Lab at reproduction fidelity
// (Scale/Seeds below): experiments that reuse configurations (Figs 13, 15,
// 16, 18 share the headline runs) only pay for simulation once. For
// full-fidelity numbers use `go run ./cmd/kagura-bench` instead.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"sync"
	"testing"

	"kagura"
	"kagura/internal/campaign"
	"kagura/internal/ckpt"
	"kagura/internal/ehs"
	"kagura/internal/journal"
)

var benchVerbose = flag.Bool("bench.tables", true, "print each experiment's table during benchmarks")

var (
	benchLabOnce sync.Once
	benchLab     *kagura.Lab
)

// lab returns the shared benchmark lab: moderate fidelity that keeps the
// whole `-bench=.` sweep in a few minutes while preserving the paper's
// shapes.
func lab() *kagura.Lab {
	benchLabOnce.Do(func() {
		opts := kagura.DefaultOptions()
		opts.Scale = 0.4
		opts.Seeds = []uint64{1, 2}
		benchLab = kagura.NewLab(opts)
	})
	return benchLab
}

// runExperiment is the common benchmark body.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	var table kagura.ExperimentTable
	for i := 0; i < b.N; i++ {
		res, err := lab().Run(id)
		if err != nil {
			b.Fatal(err)
		}
		table = res.Render()
	}
	if *benchVerbose {
		fmt.Print(table.String())
	}
}

func BenchmarkFig01CacheSizeDilemma(b *testing.B)  { runExperiment(b, "fig01") }
func BenchmarkFig03AnalyticModel(b *testing.B)     { runExperiment(b, "fig03") }
func BenchmarkFig11PowerTraces(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12CycleConsistency(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13Performance(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14CycleLengths(b *testing.B)      { runExperiment(b, "fig14") }
func BenchmarkFig15MissRates(b *testing.B)         { runExperiment(b, "fig15") }
func BenchmarkFig16EnergyBreakdown(b *testing.B)   { runExperiment(b, "fig16") }
func BenchmarkFig17ArithIntensity(b *testing.B)    { runExperiment(b, "fig17") }
func BenchmarkFig18CompressionCut(b *testing.B)    { runExperiment(b, "fig18") }
func BenchmarkFig19DesignsTriggers(b *testing.B)   { runExperiment(b, "fig19") }
func BenchmarkFig20CacheManagements(b *testing.B)  { runExperiment(b, "fig20") }
func BenchmarkFig21AdaptationSchemes(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22IncreaseStep(b *testing.B)      { runExperiment(b, "fig22") }
func BenchmarkFig23Compressors(b *testing.B)       { runExperiment(b, "fig23") }
func BenchmarkFig24CacheSizes(b *testing.B)        { runExperiment(b, "fig24") }
func BenchmarkFig25CacheWays(b *testing.B)         { runExperiment(b, "fig25") }
func BenchmarkFig26BlockSizes(b *testing.B)        { runExperiment(b, "fig26") }
func BenchmarkFig27MemorySizes(b *testing.B)       { runExperiment(b, "fig27") }
func BenchmarkFig28MemoryTypes(b *testing.B)       { runExperiment(b, "fig28") }
func BenchmarkFig29CapacitorSizes(b *testing.B)    { runExperiment(b, "fig29") }
func BenchmarkFig30PowerTraces(b *testing.B)       { runExperiment(b, "fig30") }
func BenchmarkTableIIHistoryDepth(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTableIIICapLeakage(b *testing.B)     { runExperiment(b, "table3") }
func BenchmarkTableIVCounterBits(b *testing.B)     { runExperiment(b, "table4") }
func BenchmarkHardwareOverhead(b *testing.B)       { runExperiment(b, "area") }

// Ablation and extension benches (mechanisms the paper describes in §VI-A,
// §VII-A, and §IX but does not plot).
func BenchmarkEstimatorAblation(b *testing.B)   { runExperiment(b, "estimator") }
func BenchmarkAtomicRegions(b *testing.B)       { runExperiment(b, "atomic") }
func BenchmarkExtendedCompressors(b *testing.B) { runExperiment(b, "codecs-ext") }
func BenchmarkReplacementPolicies(b *testing.B) { runExperiment(b, "replacement") }

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// instructions per wall-clock second of the host), independent of the
// experiment harness.
func BenchmarkSimulatorThroughput(b *testing.B) {
	app, err := kagura.Workload("gsm", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	trace, err := kagura.Trace("RFHome", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := kagura.DefaultConfig(app, trace).
		WithACC(kagura.BDI{}).WithKagura(kagura.DefaultController())
	b.ReportAllocs()
	b.ResetTimer()
	var committed int64
	for i := 0; i < b.N; i++ {
		res, err := kagura.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		committed += res.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instrs/s")
	if b.N > 0 {
		b.ReportMetric(float64(committed)/float64(b.N), "instrs/op")
	}
}

// BenchmarkSimCore isolates the simulator inner loop (instruction run loop +
// codec size probes on every fill and writeback) per codec and per design —
// the perf trajectory BENCH_simcore.json records and the CI benchmark-
// regression gate (cmd/kagura-benchgate) enforces. The jpeg workload is
// memory-bound and highly compressible, so the codec path dominates; the two
// designs cover the checkpoint-heavy (NVSRAMCache) and rollback (SweepCache)
// crash-consistency variants.
func BenchmarkSimCore(b *testing.B) {
	app, err := kagura.Workload("jpeg", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	trace, err := kagura.Trace("RFHome", 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range kagura.Compressors() {
		codec, err := kagura.Compressor(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, design := range []kagura.Design{kagura.NVSRAMCache, kagura.SweepCache} {
			b.Run(codec.Name()+"/"+design.String(), func(b *testing.B) {
				cfg := kagura.DefaultConfig(app, trace).
					WithACC(codec).WithKagura(kagura.DefaultController())
				cfg.Design = design
				b.ReportAllocs()
				b.ResetTimer()
				var committed int64
				for i := 0; i < b.N; i++ {
					res, err := kagura.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					committed += res.Committed
				}
				b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instrs/s")
				b.ReportMetric(float64(committed)/float64(b.N), "instrs/op")
			})
		}
	}
}

// benchSweepSpecs returns a base spec plus its R_thres-policy sweep variants
// — the shared-warm-prefix shape the warm-start cache accelerates.
func benchSweepSpecs() []kagura.RunSpec {
	base := kagura.RunSpec{
		App: "jpeg", Trace: "RFHome", Seed: 1, Scale: 1.0,
		Codec: "BDI", ACC: true, Kagura: true, Policy: "AIMD", Trigger: "mem",
	}
	variants := []kagura.RunSpec{base}
	for _, p := range []string{"MIAD", "AIAD", "MIMD"} {
		v := base
		v.Policy = p
		variants = append(variants, v)
	}
	return variants
}

// benchSweepCycles picks the fork point for benchSweepSpecs: half the base
// run's cycle count (5ns core cycles).
func benchSweepCycles(b *testing.B) int64 {
	b.Helper()
	cfg, err := benchSweepSpecs()[0].Config()
	if err != nil {
		b.Fatal(err)
	}
	res, err := kagura.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return int64(res.ExecSeconds/5e-9) / 2
}

// BenchmarkSnapshotEncode measures the cost of serializing a mid-run
// simulator snapshot to the versioned internal/ckpt binary format.
func BenchmarkSnapshotEncode(b *testing.B) {
	cfg, err := benchSweepSpecs()[0].Config()
	if err != nil {
		b.Fatal(err)
	}
	sim, err := ehs.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.RunToCycle(context.Background(), benchSweepCycles(b)); err != nil {
		b.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytesOut int
	for i := 0; i < b.N; i++ {
		blob, err := ckpt.Encode(snap)
		if err != nil {
			b.Fatal(err)
		}
		bytesOut = len(blob)
	}
	b.ReportMetric(float64(bytesOut), "snapshot-bytes")
}

// BenchmarkWarmStartSweep times a 4-point policy sweep submitted as one
// batch, cold (every run simulates from cycle 0) vs. warm (variants fork
// from one shared mid-run checkpoint). The warm/cold ns/op ratio is the
// wall-clock win of warm-starting; kagura_warm_* counters in /metrics track
// the same reuse in production.
func BenchmarkWarmStartSweep(b *testing.B) {
	specs := benchSweepSpecs()
	cycles := benchSweepCycles(b)
	runBatch := func(b *testing.B, fork *kagura.ForkPoint) {
		opts := kagura.DefaultServiceOptions()
		opts.Workers = 4
		for i := 0; i < b.N; i++ {
			svc := kagura.NewService(opts)
			jobs, err := svc.SubmitBatchFork(specs, fork)
			if err != nil {
				b.Fatal(err)
			}
			for _, j := range jobs {
				if _, err := j.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			svc.Close()
		}
	}
	b.Run("cold", func(b *testing.B) { runBatch(b, nil) })
	b.Run("warm", func(b *testing.B) { runBatch(b, &kagura.ForkPoint{Cycles: cycles}) })
}

// benchCampaignSpec is the 8×8 scale × decay-interval campaign whose
// progress surface peaks interior to the grid — the same campaign
// TestHalvingMatchesGridBest (internal/campaign) uses for its ≤50%-
// submissions acceptance bound.
func benchCampaignSpec(strategy string) *kagura.CampaignSpec {
	raw := func(vals ...any) []json.RawMessage {
		out := make([]json.RawMessage, len(vals))
		for i, v := range vals {
			blob, err := json.Marshal(v)
			if err != nil {
				panic(err)
			}
			out[i] = blob
		}
		return out
	}
	return &kagura.CampaignSpec{
		Name:     "bench",
		Strategy: strategy,
		Base:     kagura.RunSpec{App: "jpeg", Codec: "BDI", ACC: true, Kagura: true},
		Axes: []kagura.CampaignAxis{
			{Param: "scale", Values: raw(0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16)},
			{Param: "decayInterval", Values: raw(0, 500, 1000, 2000, 4000, 8000, 16000, 32000)},
		},
		Objective: kagura.CampaignObjective{Metric: campaign.MetricProgress, Goal: campaign.GoalMax},
	}
}

// BenchmarkCampaignSweep times the 64-point campaign under the exhaustive
// grid vs. adaptive successive halving. Both land on the same best point
// (asserted in internal/campaign's tests); the halving/grid ns/op ratio is
// the wall-clock win of adaptive search, and the "points" metric records how
// many simulations each strategy actually submitted. A fresh service per
// iteration keeps the strategies from serving each other's cache.
func BenchmarkCampaignSweep(b *testing.B) {
	run := func(b *testing.B, strategy string) {
		opts := kagura.DefaultServiceOptions()
		opts.Workers = 8
		var points int
		for i := 0; i < b.N; i++ {
			svc := kagura.NewService(opts)
			runner := &kagura.CampaignRunner{Svc: svc}
			rep, err := runner.Run(context.Background(), benchCampaignSpec(strategy))
			if err != nil {
				b.Fatal(err)
			}
			points = rep.Submitted
			svc.Close()
		}
		b.ReportMetric(float64(points), "points")
	}
	b.Run("grid", func(b *testing.B) { run(b, campaign.StrategyGrid) })
	b.Run("halving", func(b *testing.B) { run(b, campaign.StrategyHalving) })
}

// BenchmarkJournalSubmit measures the submit-to-settle cost of one small
// simulation job with the crash journal off vs on (DESIGN.md §14). Every
// iteration submits a distinct seed so nothing is served from the result
// cache; the journaled variant pays two buffered record appends (submit +
// settle, CRC-framed, no fsync) per job. The portable signal is the on/off
// ns/op ratio — the journal's overhead budget is <2% of the cheapest real
// job; BENCH_journal.json holds the recorded numbers.
func BenchmarkJournalSubmit(b *testing.B) {
	run := func(b *testing.B, journaled bool) {
		opts := kagura.DefaultServiceOptions()
		opts.Workers = 4
		if journaled {
			jnl, err := kagura.OpenJournal(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer jnl.Close()
			opts.Journal = jnl
		}
		svc := kagura.NewService(opts)
		defer svc.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec := kagura.RunSpec{
				App: "jpeg", Scale: 0.02, Codec: "BDI", ACC: true,
				Seed: uint64(i + 1),
			}
			job, err := svc.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := job.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkJournalAppend isolates one record append — frame, CRC-32C,
// buffered write — the absolute cost the journal adds to each accepted job.
// Re-appending one key also drives the compacting rotation path once the
// segment crosses its size threshold.
func BenchmarkJournalAppend(b *testing.B) {
	jnl, err := kagura.OpenJournal(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer jnl.Close()
	rec := journal.Record{
		Type: journal.TypeJobSubmit,
		Key:  "bench",
		Spec: json.RawMessage(`{"app":"jpeg","scale":0.02,"codec":"BDI","acc":true}`),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := jnl.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
