package kagura_test

import (
	"testing"

	"kagura"
)

func TestFacadeQuickstart(t *testing.T) {
	app, err := kagura.Workload("jpeg", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := kagura.Trace("RFHome", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := kagura.DefaultConfig(app, trace)
	withKagura := base.WithACC(kagura.BDI{}).WithKagura(kagura.DefaultController())

	b, err := kagura.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kagura.Run(withKagura)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Completed || !k.Completed {
		t.Fatal("runs did not complete")
	}
	if k.Compressions == 0 {
		t.Fatal("compression stack inactive")
	}
	_ = k.Speedup(b)
}

func TestFacadeRegistries(t *testing.T) {
	if len(kagura.Workloads()) != 20 {
		t.Fatalf("workloads = %d", len(kagura.Workloads()))
	}
	if len(kagura.Compressors()) != 4 {
		t.Fatalf("compressors = %d", len(kagura.Compressors()))
	}
	if len(kagura.Experiments()) != 30 {
		t.Fatalf("experiments = %d", len(kagura.Experiments()))
	}
	for _, name := range kagura.Compressors() {
		if _, err := kagura.Compressor(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeCustomWorkload(t *testing.T) {
	// A downstream user builds a custom sensing workload via the exported
	// types and runs it against the paper's system.
	app := &kagura.App{
		Name: "custom-sensor",
		Seed: 42,
		Regions: []kagura.Region{
			{Base: 0x1000_0000, SizeWords: 64, HotWords: 64, Class: kagura.ClassNarrow},
			{Base: 0x1010_0000, SizeWords: 2048, HotWords: 256, Class: kagura.ClassZeros},
		},
		Phases: []kagura.Phase{{
			Iterations: 3000,
			Body: []kagura.Slot{
				{Kind: kagura.Load, Pattern: kagura.PatSeq, Region: 1},
				{Kind: kagura.Arith},
				{Kind: kagura.Arith},
				{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 0},
				{Kind: kagura.Arith},
				{Kind: kagura.Store, Pattern: kagura.PatHot, Region: 0},
				{Kind: kagura.Arith},
				{Kind: kagura.Arith},
			},
			CodeBase:  0x0001_0000,
			CodeWords: 48,
		}},
	}
	app.Build()
	trace, _ := kagura.Trace("Solar", 7)
	res, err := kagura.Run(kagura.DefaultConfig(app, trace).
		WithACC(kagura.BDI{}).WithKagura(kagura.DefaultController()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("custom workload did not complete")
	}
}

func TestFacadeLab(t *testing.T) {
	lab := kagura.NewLab(kagura.LabOptions{
		Scale: 0.05, Seeds: []uint64{1}, Apps: []string{"gsm"}, SubsetSize: 1,
	})
	res, err := lab.Run("fig14")
	if err != nil {
		t.Fatal(err)
	}
	if tbl := res.Render(); len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}
