// Command kagura-campaign runs declarative sweep campaigns (DESIGN.md §13).
//
// Usage:
//
//	kagura-campaign run -spec campaign.json -out report.json -csv report.csv
//	kagura-campaign run -spec campaign.json -addr http://localhost:8080
//	kagura-campaign run -spec campaign.json -store-dir ./state -resume
//	kagura-campaign status -addr http://localhost:8080 [-id c1]
//	kagura-campaign export -addr http://localhost:8080 -id c1 -format csv -out report.csv
//	kagura-campaign params
//
// run executes a campaign spec. Without -addr it runs in process on a local
// service; with -addr it POSTs the spec to a kagura-serve instance, polls
// until the campaign settles, and downloads the report. Either way the
// resulting report is deterministic: same spec + seed ⇒ byte-identical
// JSON/CSV, regardless of -workers or the server's pool size.
//
// run -resume picks up an interrupted campaign instead of starting over
// (DESIGN.md §14). Locally it needs -store-dir: the run journals its waves
// under <store-dir>/journal, and a rerun with -resume fast-forwards through
// the checkpointed waves (store hits, not recomputation) before continuing —
// the resumed report is byte-identical to an uninterrupted run. Remotely it
// matches the spec's hash against the server's campaigns and re-attaches to
// the existing one (including a campaign the server itself resumed after a
// crash) rather than POSTing a duplicate.
//
// status lists a server's campaigns (or one campaign's live dispatch state);
// export downloads a finished campaign's report. params prints the sweepable
// RunSpec knobs a spec's axes may name.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kagura"
	"kagura/internal/campaign"
	"kagura/internal/ckpt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	case "params":
		fmt.Println(strings.Join(kagura.CampaignParams(), "\n"))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kagura-campaign: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `kagura-campaign runs declarative sweep campaigns.

Commands:
  run     execute a campaign spec (in process, or remotely via -addr)
  status  list a server's campaigns, or show one campaign's live status
  export  download a finished campaign's report from a server
  params  list the sweepable RunSpec knobs

Run "kagura-campaign <command> -h" for the command's flags.
`)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "kagura-campaign: %v\n", err)
		os.Exit(1)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON file (required)")
	addr := fs.String("addr", "", "kagura-serve base URL (empty = run in process)")
	workers := fs.Int("workers", 0, "in-process worker pool size (0 = GOMAXPROCS)")
	out := fs.String("out", "", "write the JSON report here (empty = stdout)")
	csvOut := fs.String("csv", "", "also write the CSV report here")
	poll := fs.Duration("poll", time.Second, "remote status poll interval")
	verbose := fs.Bool("v", false, "log each dispatched point to stderr")
	storeDir := fs.String("store-dir", "",
		"local mode: persistent store + crash journal directory (enables -resume)")
	resume := fs.Bool("resume", false,
		"resume an interrupted campaign: locally from <store-dir>/journal, remotely by spec hash")
	fs.Parse(args)

	if *specPath == "" {
		fatal(fmt.Errorf("run: -spec is required"))
	}
	if *resume && *addr == "" && *storeDir == "" {
		fatal(fmt.Errorf("run: -resume needs -store-dir (local) or -addr (remote)"))
	}
	f, err := os.Open(*specPath)
	fatal(err)
	spec, err := kagura.DecodeCampaignSpec(f)
	f.Close()
	fatal(err)

	var rep *kagura.CampaignReport
	if *addr == "" {
		rep, err = runLocal(spec, *workers, *verbose, *storeDir, *resume)
	} else {
		rep, err = runRemote(*addr, *specPath, spec, *poll, *verbose, *resume)
	}
	fatal(err)

	blob, err := rep.ExportJSON()
	fatal(err)
	fatal(writeOutput(*out, blob))
	if *csvOut != "" {
		csv, err := rep.ExportCSV()
		fatal(err)
		fatal(writeOutput(*csvOut, csv))
	}
	fmt.Fprintf(os.Stderr, "kagura-campaign: %s — %d/%d points submitted over %d rounds, best index %d, %d on the Pareto frontier\n",
		rep.Name, rep.Submitted, rep.TotalPoints, rep.Rounds, rep.BestIndex, len(rep.Pareto))
}

// runLocal executes the campaign in process. With a -store-dir the run is
// journaled under <store-dir>/journal; with -resume as well, an interrupted
// run whose journaled spec hash matches is fast-forwarded instead of
// restarted (DESIGN.md §14).
func runLocal(spec *kagura.CampaignSpec, workers int, verbose bool, storeDir string, resume bool) (*kagura.CampaignReport, error) {
	opts := kagura.DefaultServiceOptions()
	opts.Workers = workers
	var jnl *kagura.Journal
	if storeDir != "" {
		opts.StoreDir = storeDir
		var err error
		jnl, err = kagura.OpenJournal(filepath.Join(storeDir, "journal"))
		if err != nil {
			return nil, err
		}
		// LIFO with svc.Close below: the service settles in-flight jobs into
		// the journal first, then the journal closes.
		defer jnl.Close()
		opts.Journal = jnl
	}
	svc := kagura.NewService(opts)
	defer svc.Close()
	if err := svc.StoreErr(); err != nil {
		return nil, err
	}
	runner := &kagura.CampaignRunner{Svc: svc}
	if jnl != nil {
		hash, _, err := campaign.SpecHash(spec)
		if err != nil {
			return nil, err
		}
		runner.Jnl = jnl
		// Deterministic ID: reruns of the same spec find their own intent.
		runner.CampaignID = "cli-" + hash[:12]
		if resume {
			if intent := jnl.State().Campaigns[runner.CampaignID]; intent != nil && intent.SpecHash == hash {
				runner.Resume = intent
				fmt.Fprintf(os.Stderr, "kagura-campaign: resuming from %s — %d checkpointed wave(s)\n",
					storeDir, len(intent.Waves))
			} else {
				fmt.Fprintf(os.Stderr, "kagura-campaign: no interrupted run for this spec in %s; starting fresh\n", storeDir)
			}
		}
	}
	if verbose {
		runner.Progress = func(round, index int, jobID string) {
			fmt.Fprintf(os.Stderr, "kagura-campaign: round %d point %d -> %s\n", round, index, jobID)
		}
	}
	return runner.Run(context.Background(), spec)
}

// runRemote re-reads the spec file verbatim (the server validates it again),
// POSTs it, polls until the campaign settles, and downloads the JSON report.
// With -resume it first looks for an existing campaign with the same spec
// hash and re-attaches to it instead of POSTing a duplicate.
func runRemote(addr, specPath string, spec *kagura.CampaignSpec, poll time.Duration, verbose bool, resume bool) (*kagura.CampaignReport, error) {
	var st kagura.CampaignStatus
	attached := false
	if resume {
		var err error
		st, attached, err = findBySpecHash(addr, spec)
		if err != nil {
			return nil, err
		}
		if attached {
			fmt.Fprintf(os.Stderr, "kagura-campaign: re-attached to %s on %s (%s, %d/%d dispatched)\n",
				st.ID, addr, st.State, dispatchedPoints(st), st.TotalPoints)
		} else {
			fmt.Fprintf(os.Stderr, "kagura-campaign: no campaign with this spec on %s; starting fresh\n", addr)
		}
	}
	if !attached {
		body, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(strings.TrimSuffix(addr, "/")+"/v1/campaigns", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		if err := decodeResponse(resp, http.StatusAccepted, &st); err != nil {
			return nil, err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "kagura-campaign: started %s on %s (%d points)\n", st.ID, addr, st.TotalPoints)
		}
	}
	for st.State == campaign.StateRunning {
		time.Sleep(poll)
		var err error
		st, err = fetchStatus(addr, st.ID)
		if err != nil {
			return nil, err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "kagura-campaign: %s %s — %d/%d dispatched\n",
				st.ID, st.State, dispatchedPoints(st), st.TotalPoints)
		}
	}
	if st.State == campaign.StateFailed {
		return nil, fmt.Errorf("campaign %s failed: %s", st.ID, st.Error)
	}
	if st.Report == nil {
		return nil, fmt.Errorf("campaign %s finished without a report", st.ID)
	}
	return st.Report, nil
}

// findBySpecHash scans the server's campaign list for one whose recorded
// spec hash matches the local spec (skipping failed ones) and returns its
// full status. attached=false means nothing matched — run it fresh.
func findBySpecHash(addr string, spec *kagura.CampaignSpec) (kagura.CampaignStatus, bool, error) {
	hash, _, err := campaign.SpecHash(spec)
	if err != nil {
		return kagura.CampaignStatus{}, false, err
	}
	resp, err := http.Get(strings.TrimSuffix(addr, "/") + "/v1/campaigns")
	if err != nil {
		return kagura.CampaignStatus{}, false, err
	}
	var list struct {
		Campaigns []kagura.CampaignStatus `json:"campaigns"`
	}
	if err := decodeResponse(resp, http.StatusOK, &list); err != nil {
		return kagura.CampaignStatus{}, false, err
	}
	for _, c := range list.Campaigns {
		if c.SpecHash == hash && c.State != campaign.StateFailed {
			// The list view is a summary; fetch the full status (the report
			// rides on it once the campaign is done).
			st, err := fetchStatus(addr, c.ID)
			return st, err == nil, err
		}
	}
	return kagura.CampaignStatus{}, false, nil
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "kagura-serve base URL")
	id := fs.String("id", "", "campaign ID (empty = list all)")
	fs.Parse(args)

	if *id != "" {
		st, err := fetchStatus(*addr, *id)
		fatal(err)
		blob, err := json.MarshalIndent(st, "", "  ")
		fatal(err)
		fmt.Println(string(blob))
		return
	}
	resp, err := http.Get(strings.TrimSuffix(*addr, "/") + "/v1/campaigns")
	fatal(err)
	var list struct {
		Campaigns []kagura.CampaignStatus `json:"campaigns"`
	}
	fatal(decodeResponse(resp, http.StatusOK, &list))
	if len(list.Campaigns) == 0 {
		fmt.Println("no campaigns")
		return
	}
	for _, st := range list.Campaigns {
		fmt.Printf("%-6s %-20s %-8s %s  %d/%d dispatched\n",
			st.ID, st.Name, st.State, st.Strategy, dispatchedPoints(st), st.TotalPoints)
	}
}

// dispatchedPoints counts dispatched sweep points, excluding the baseline
// job (index -1).
func dispatchedPoints(st kagura.CampaignStatus) int {
	n := 0
	for _, pj := range st.Dispatched {
		if pj.Index >= 0 {
			n++
		}
	}
	return n
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "kagura-serve base URL")
	id := fs.String("id", "", "campaign ID (required)")
	format := fs.String("format", "json", "export format: json or csv")
	out := fs.String("out", "", "write the report here (empty = stdout)")
	fs.Parse(args)

	if *id == "" {
		fatal(fmt.Errorf("export: -id is required"))
	}
	if *format != "json" && *format != "csv" {
		fatal(fmt.Errorf("export: unknown format %q (json or csv)", *format))
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/campaigns/%s?format=%s",
		strings.TrimSuffix(*addr, "/"), *id, *format))
	fatal(err)
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	fatal(err)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("export: server returned %s: %s", resp.Status, strings.TrimSpace(string(blob))))
	}
	fatal(writeOutput(*out, blob))
}

func fetchStatus(addr, id string) (kagura.CampaignStatus, error) {
	var st kagura.CampaignStatus
	resp, err := http.Get(strings.TrimSuffix(addr, "/") + "/v1/campaigns/" + id)
	if err != nil {
		return st, err
	}
	return st, decodeResponse(resp, http.StatusOK, &st)
}

// decodeResponse reads one JSON response, surfacing non-2xx bodies (the
// server's {"error","code"} payload) as errors.
func decodeResponse(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(blob)))
	}
	return json.Unmarshal(blob, v)
}

// writeOutput lands a report on disk atomically (a crashed export must not
// leave a torn file that a downstream diff would read), or on stdout.
func writeOutput(path string, blob []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return ckpt.WriteFileAtomic(path, blob, 0o644)
}
