// Command kagura-vet is the driver for kagura's project-specific static
// analyzers (internal/lint): simdeterminism, lockedblock, mapiterorder,
// floateq, atomicwrite, boundeddecode, errtaxonomy, faultpoint, and
// metricstable. It runs two ways:
//
// Standalone, over package patterns (the CI entry point):
//
//	go run ./cmd/kagura-vet ./...
//	kagura-vet -sarif ./... > lint.sarif
//	kagura-vet ./internal/simsvc ./internal/ehs
//
// Packages are analyzed in dependency order so cross-package facts (the
// fault-point registry, the metric catalog, bounded-length helpers) resolve.
// When the analyzed set covers the whole module, the whole-module Finish
// checks run too (orphaned registry entries), and -unusedallow (on by
// default) reports //kagura:allow annotations that suppressed nothing.
// Exit status: 0 clean, 1 findings, 2 tool failure.
//
// As a go vet tool, speaking vet's unit-checker protocol (-V=full handshake,
// then one JSON .cfg per package with export-data import maps):
//
//	go vet -vettool=$(which kagura-vet) ./...
//
// In vet mode facts travel in the .vetx files vet already plumbs between
// packages (PackageVetx in, VetxOutput out); the Finish checks need the
// whole module at once and run only in standalone mode. Findings exit 2,
// matching x/tools' unitchecker convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kagura/internal/lint"
)

func main() {
	// go vet probes tools with -V=full before anything else; the output is
	// its cache key for this tool.
	versionFlag := flag.Bool("V", false, "print version and exit (go vet protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifFlag := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	unusedFlag := flag.Bool("unusedallow", true, "report //kagura:allow annotations that suppress nothing (standalone whole-module runs)")
	flag.Usage = usage
	// Accept -V=full (a non-boolean value) the way vet passes it, and answer
	// the -flags probe go vet uses to learn which flags the tool accepts.
	for i, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			os.Args[i+1] = "-V"
		case "-flags", "--flags":
			printFlagsJSON()
			return
		}
	}
	flag.Parse()

	switch {
	case *versionFlag:
		names := make([]string, 0, len(lint.All()))
		for _, a := range lint.All() {
			names = append(names, a.Name)
		}
		fmt.Printf("kagura-vet version 2 (%s)\n", strings.Join(names, ","))
		return
	case *listFlag:
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], *jsonFlag))
	}
	os.Exit(runStandalone(args, *jsonFlag, *sarifFlag, *unusedFlag))
}

// printFlagsJSON answers go vet's -flags probe: a JSON description of the
// tool's flags, which vet uses to decide what it may forward.
func printFlagsJSON() {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var descs []flagDesc
	flag.VisitAll(func(f *flag.Flag) {
		_, isBool := f.Value.(interface{ IsBoolFlag() bool })
		descs = append(descs, flagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	json.NewEncoder(os.Stdout).Encode(descs)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: kagura-vet [-json|-sarif] [-list] [-unusedallow=false] [packages]\n\nAnalyzers:\n")
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
}

// runStandalone loads the given package patterns from source and analyzes
// them in dependency order. Returns the process exit code.
func runStandalone(patterns []string, asJSON, asSARIF, unusedAllow bool) int {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return fail(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return fail(err)
	}
	requested := make(map[string]bool, len(paths))
	for _, path := range paths {
		if _, err := loader.Load(path); err != nil {
			return fail(fmt.Errorf("loading %s: %w", path, err))
		}
		requested[path] = true
	}
	suite := lint.NewSuite(lint.All())
	// The unused-suppression report is only sound when every analyzer ran
	// over the annotation's package, which RunPackage guarantees; it is
	// reported per package, so partial runs are fine.
	suite.ReportUnusedAllow = unusedAllow
	// Loaded() also holds the module-local dependencies the requested
	// packages pulled in; analyzing them too (diagnostics kept only for the
	// requested set) is what makes cross-package facts — the fault-point
	// registry, the metric catalog — resolve on partial runs.
	var diags []lint.Diagnostic
	for _, pkg := range lint.TopoSort(loader.Loaded()) {
		ds, err := suite.RunPackage(pkg)
		if err != nil {
			return fail(err)
		}
		if requested[pkg.Path] {
			diags = append(diags, ds...)
		}
	}
	// Whole-module checks (orphaned registry entries, dead catalog rows) are
	// only meaningful when the analyzed set is the whole module; on a partial
	// run every consumer outside the set would look like an orphan.
	if coversModule(loader, paths) {
		diags = append(diags, suite.Finish()...)
	}
	lint.SortDiagnostics(diags)
	switch {
	case asSARIF:
		emitSARIF(os.Stdout, diags, loader.ModDir)
	default:
		emit(os.Stdout, diags, asJSON, loader.ModDir)
	}
	if len(diags) > 0 && !asJSON {
		return 1
	}
	return 0
}

// coversModule reports whether the analyzed import paths include every
// package in the module.
func coversModule(loader *lint.Loader, analyzed []string) bool {
	all, err := loader.Expand([]string{"./..."})
	if err != nil {
		return false
	}
	have := make(map[string]bool, len(analyzed))
	for _, p := range analyzed {
		have[p] = true
	}
	for _, p := range all {
		if !have[p] {
			return false
		}
	}
	return true
}

// emit prints diagnostics, with positions relative to the module root so
// output is stable across machines.
func emit(w io.Writer, diags []lint.Diagnostic, asJSON bool, modDir string) {
	if asJSON {
		type jsonDiag struct {
			Pos      string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{relPos(d, modDir), d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", relPos(d, modDir), d.Analyzer, d.Message)
	}
}

// emitSARIF renders diagnostics as a SARIF 2.1.0 log, the interchange format
// code-scanning UIs ingest. One run, one rule per analyzer (plus the
// unusedallow pseudo-rule), uris relative to the module root.
func emitSARIF(w io.Writer, diags []lint.Diagnostic, modDir string) {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Version string     `json:"version"`
		Schema  string     `json:"$schema"`
		Runs    []sarifRun `json:"runs"`
	}

	rules := []sarifRule{{
		ID:               lint.UnusedAllowName,
		ShortDescription: sarifMessage{Text: "report //kagura:allow annotations that suppress nothing or lack a reason"},
	}}
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: file},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{Tool: sarifTool{Driver: sarifDriver{
			Name:           "kagura-vet",
			InformationURI: "DESIGN.md#8-static-analysis",
			Rules:          rules,
		}}, Results: results}},
	})
}

func relPos(d lint.Diagnostic, modDir string) string {
	file := d.Pos.Filename
	if modDir != "" {
		if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d", file, d.Pos.Line, d.Pos.Column)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "kagura-vet:", err)
	return 2
}

// vetConfig is the JSON unit-checker configuration go vet hands each tool,
// one file per package (the subset of fields this driver needs).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package described by a vet .cfg file. Returns the
// process exit code (0 clean, 1 failure, 2 findings — unitchecker's
// convention, which go vet surfaces as the findings themselves).
//
// Cross-package facts ride vet's own fact plumbing: the facts of every
// dependency arrive serialized in the PackageVetx files, and this package's
// facts leave through VetxOutput — so the analyzers run even on VetxOnly
// (facts-only) units, with diagnostics discarded.
func runVetUnit(cfgFile string, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return vetFail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return vetFail(fmt.Errorf("%s: %w", cfgFile, err))
	}
	// Written unconditionally (possibly empty) before any early return: vet
	// requires the file to exist for its action cache even when this unit
	// contributes nothing.
	writeVetx := func(facts []lint.Fact) int {
		if cfg.VetxOutput == "" {
			return 0
		}
		payload, err := lint.EncodeFacts(facts)
		if err != nil {
			return vetFail(err)
		}
		if len(facts) == 0 {
			payload = nil
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			return vetFail(err)
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Test files are exempt from the suite by design (see internal/lint):
		// vet also invokes the tool on test variants of each package.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if code := writeVetx(nil); code != 0 {
				return code
			}
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return writeVetx(nil)
	}

	// Imports resolve through the export data the go command already built,
	// exactly as x/tools' unitchecker does it.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := mapImporter{cfg: &cfg, under: compilerImp}
	tconf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, "amd64")}
	info := lint.NewInfo()
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if code := writeVetx(nil); code != 0 {
			return code
		}
		return typecheckFailed(cfg, err)
	}

	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	suite := lint.NewSuite(lint.All())
	for _, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // a dependency that exported nothing may have no file
		}
		facts, err := lint.DecodeFacts(data)
		if err != nil {
			return vetFail(fmt.Errorf("%s: %w", vetxFile, err))
		}
		suite.Facts.AddAll(facts)
	}
	diags, err := suite.RunPackage(pkg)
	if err != nil {
		return vetFail(err)
	}
	if code := writeVetx(suite.Facts.PkgFacts(cfg.ImportPath)); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	if asJSON {
		emit(os.Stdout, diags, true, "")
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return 2
}

func typecheckFailed(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	return vetFail(err)
}

func vetFail(err error) int {
	fmt.Fprintln(os.Stderr, "kagura-vet:", err)
	return 1
}

// mapImporter translates import paths through the vet config's ImportMap
// before delegating to the export-data importer.
type mapImporter struct {
	cfg   *vetConfig
	under types.Importer
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.under.Import(path)
}
