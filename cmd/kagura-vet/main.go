// Command kagura-vet is the driver for kagura's project-specific static
// analyzers (internal/lint): simdeterminism, lockedblock, mapiterorder, and
// floateq. It runs two ways:
//
// Standalone, over package patterns (the CI entry point):
//
//	go run ./cmd/kagura-vet ./...
//	kagura-vet ./internal/simsvc ./internal/ehs
//
// Exit status: 0 clean, 1 findings, 2 tool failure.
//
// As a go vet tool, speaking vet's unit-checker protocol (-V=full handshake,
// then one JSON .cfg per package with export-data import maps):
//
//	go vet -vettool=$(which kagura-vet) ./...
//
// In vet mode findings exit 2, matching x/tools' unitchecker convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kagura/internal/lint"
)

func main() {
	// go vet probes tools with -V=full before anything else; the output is
	// its cache key for this tool.
	versionFlag := flag.Bool("V", false, "print version and exit (go vet protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = usage
	// Accept -V=full (a non-boolean value) the way vet passes it, and answer
	// the -flags probe go vet uses to learn which flags the tool accepts.
	for i, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			os.Args[i+1] = "-V"
		case "-flags", "--flags":
			printFlagsJSON()
			return
		}
	}
	flag.Parse()

	switch {
	case *versionFlag:
		fmt.Println("kagura-vet version 1 (simdeterminism,lockedblock,mapiterorder,floateq)")
		return
	case *listFlag:
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], *jsonFlag))
	}
	os.Exit(runStandalone(args, *jsonFlag))
}

// printFlagsJSON answers go vet's -flags probe: a JSON description of the
// tool's flags, which vet uses to decide what it may forward.
func printFlagsJSON() {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var descs []flagDesc
	flag.VisitAll(func(f *flag.Flag) {
		_, isBool := f.Value.(interface{ IsBoolFlag() bool })
		descs = append(descs, flagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	json.NewEncoder(os.Stdout).Encode(descs)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: kagura-vet [-json] [-list] [packages]\n\nAnalyzers:\n")
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
}

// runStandalone loads the given package patterns from source and analyzes
// them. Returns the process exit code.
func runStandalone(patterns []string, asJSON bool) int {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return fail(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return fail(err)
	}
	var diags []lint.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return fail(fmt.Errorf("loading %s: %w", path, err))
		}
		ds, err := lint.RunAnalyzers(lint.All(), pkg)
		if err != nil {
			return fail(err)
		}
		diags = append(diags, ds...)
	}
	lint.SortDiagnostics(diags)
	emit(os.Stdout, diags, asJSON, loader.ModDir)
	if len(diags) > 0 && !asJSON {
		return 1
	}
	return 0
}

// emit prints diagnostics, with positions relative to the module root so
// output is stable across machines.
func emit(w io.Writer, diags []lint.Diagnostic, asJSON bool, modDir string) {
	if asJSON {
		type jsonDiag struct {
			Pos      string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{relPos(d, modDir), d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", relPos(d, modDir), d.Analyzer, d.Message)
	}
}

func relPos(d lint.Diagnostic, modDir string) string {
	file := d.Pos.Filename
	if modDir != "" {
		if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d", file, d.Pos.Line, d.Pos.Column)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "kagura-vet:", err)
	return 2
}

// vetConfig is the JSON unit-checker configuration go vet hands each tool,
// one file per package (the subset of fields this driver needs).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package described by a vet .cfg file. Returns the
// process exit code (0 clean, 1 failure, 2 findings — unitchecker's
// convention, which go vet surfaces as the findings themselves).
func runVetUnit(cfgFile string, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return vetFail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return vetFail(fmt.Errorf("%s: %w", cfgFile, err))
	}
	// This tool produces no cross-package facts, but vet requires the output
	// file to exist for its action cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return vetFail(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Test files are exempt from the suite by design (see internal/lint):
		// vet also invokes the tool on test variants of each package.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	// Imports resolve through the export data the go command already built,
	// exactly as x/tools' unitchecker does it.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := mapImporter{cfg: &cfg, under: compilerImp}
	tconf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, "amd64")}
	info := lint.NewInfo()
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.RunAnalyzers(lint.All(), pkg)
	if err != nil {
		return vetFail(err)
	}
	if len(diags) == 0 {
		return 0
	}
	if asJSON {
		emit(os.Stdout, diags, true, "")
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return 2
}

func typecheckFailed(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	return vetFail(err)
}

func vetFail(err error) int {
	fmt.Fprintln(os.Stderr, "kagura-vet:", err)
	return 1
}

// mapImporter translates import paths through the vet config's ImportMap
// before delegating to the export-data importer.
type mapImporter struct {
	cfg   *vetConfig
	under types.Importer
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.under.Import(path)
}
