// Command kagura-ckpt takes, inspects, and compares simulator checkpoints.
//
// Usage:
//
//	kagura-ckpt take -cycle 450000 -o mid.ckpt -app jpeg -codec BDI -acc
//	kagura-ckpt describe mid.ckpt
//	kagura-ckpt diff mid.ckpt other.ckpt
//	kagura-ckpt resume -app jpeg -codec BDI -acc mid.ckpt
//	kagura-ckpt store ls -dir /var/lib/kagura/store
//	kagura-ckpt journal ls -dir /var/lib/kagura/store/journal
//
// take runs a configuration (same spec flags as kagura-sim) to a cycle bound
// and writes the encoded snapshot. describe prints a human-readable summary.
// diff reports every field-level difference between two checkpoints and exits
// non-zero when they differ. resume restores a checkpoint into a fresh
// simulator built from the given spec flags and runs it to completion —
// under the original config this reproduces the uninterrupted run exactly;
// under a variant config it forks the warm prefix (sweep warm-start).
//
// store inspects a kagura-serve persistent store directory (DESIGN.md §12):
// ls lists every entry, gc evicts down to a byte budget and clears the
// quarantine, and verify re-reads every payload end to end, quarantining any
// entry that fails its checksum or decoder.
//
// journal inspects a kagura-serve crash-journal directory (DESIGN.md §14):
// ls decodes and lists the intent records read-only, and verify runs the
// server's own recovery — truncating torn tails, quarantining corrupt
// segments — exiting 1 if it had to repair anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kagura"
	"kagura/internal/ckpt"
	"kagura/internal/ehs"
	"kagura/internal/journal"
	"kagura/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "take":
		cmdTake(os.Args[2:])
	case "describe":
		cmdDescribe(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "resume":
		cmdResume(os.Args[2:])
	case "store":
		cmdStore(os.Args[2:])
	case "journal":
		cmdJournal(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kagura-ckpt: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `kagura-ckpt manages simulator checkpoints.

Commands:
  take      run a configuration to a cycle bound and write a checkpoint
  describe  print a human-readable summary of a checkpoint file
  diff      compare two checkpoint files field by field (exit 1 if they differ)
  resume    restore a checkpoint and run it to completion
  store     inspect a persistent store directory: ls, gc, or verify
  journal   inspect a crash-journal directory: ls (read-only) or verify

Run "kagura-ckpt <command> -h" for the command's flags.
`)
}

// specFlags registers the kagura-sim spec flags on fs and returns a closure
// that assembles the normalized RunSpec after fs.Parse.
func specFlags(fs *flag.FlagSet) func() (kagura.RunSpec, error) {
	var (
		appName  = fs.String("app", "jpeg", "workload name")
		appFile  = fs.String("workload", "", "JSON workload definition file (overrides -app)")
		traceSrc = fs.String("trace", "RFHome", "ambient source: RFHome, Solar, Thermal")
		seed     = fs.Uint64("seed", 1, "power-trace seed")
		scale    = fs.Float64("scale", 1.0, "workload length scale")
		codec    = fs.String("codec", "", "compression algorithm: BDI, FPC, C-Pack, DZC (empty = none)")
		useACC   = fs.Bool("acc", false, "gate compression behind the ACC predictor")
		useKag   = fs.Bool("kagura", false, "enable the Kagura controller")
		trigger  = fs.String("trigger", "mem", "Kagura trigger: mem or vol")
		policy   = fs.String("policy", "AIMD", "R_thres policy: AIMD, MIAD, AIAD, MIMD")
		design   = fs.String("design", "NVSRAMCache", "EHS design: NVSRAMCache, NvMR, SweepCache")
		decay    = fs.Int64("decay", 0, "EDBP cache-decay interval in cycles (0 = off)")
		prefetch = fs.Bool("prefetch", false, "enable the next-line prefetcher")
	)
	return func() (kagura.RunSpec, error) {
		spec := kagura.RunSpec{
			App:           *appName,
			Scale:         *scale,
			Trace:         *traceSrc,
			Seed:          *seed,
			Codec:         *codec,
			ACC:           *useACC && *codec != "",
			Kagura:        *useKag,
			Design:        *design,
			DecayInterval: *decay,
			Prefetch:      *prefetch,
		}
		if *useKag {
			spec.Policy = *policy
			spec.Trigger = *trigger
		}
		if *appFile != "" {
			blob, err := os.ReadFile(*appFile)
			if err != nil {
				return spec, err
			}
			spec.App = ""
			spec.Workload = blob
		}
		return spec.Normalize()
	}
}

func cmdTake(args []string) {
	fs := flag.NewFlagSet("kagura-ckpt take", flag.ExitOnError)
	cycle := fs.Int64("cycle", 0, "core cycle to run to before snapshotting (required, > 0)")
	out := fs.String("o", "kagura.ckpt", "output checkpoint file")
	buildSpec := specFlags(fs)
	fs.Parse(args)
	if *cycle <= 0 {
		fatal(fmt.Errorf("take needs -cycle > 0"))
	}

	spec, err := buildSpec()
	fatal(err)
	cfg, err := spec.Config()
	fatal(err)
	sim, err := ehs.New(cfg)
	fatal(err)
	completed, err := sim.RunToCycle(context.Background(), *cycle)
	fatal(err)
	snap, err := sim.Snapshot()
	fatal(err)
	blob, err := ckpt.Encode(snap)
	fatal(err)
	// Atomic: a crash mid-write must never leave a truncated checkpoint at
	// -o, and must not destroy a previous checkpoint already there.
	fatal(ckpt.WriteFileAtomic(*out, blob, 0o644))

	fmt.Printf("wrote %s: %d bytes at cycle %d (pos %d", *out, len(blob), snap.Time, snap.Pos)
	if completed {
		fmt.Printf(", program complete")
	}
	fmt.Printf(")\nconfig fingerprint: %s\n", snap.ConfigHash)
}

func cmdDescribe(args []string) {
	fs := flag.NewFlagSet("kagura-ckpt describe", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("describe needs exactly one checkpoint file"))
	}
	snap, err := readCkpt(fs.Arg(0))
	fatal(err)
	fmt.Print(ckpt.Describe(snap))
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("kagura-ckpt diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff needs exactly two checkpoint files"))
	}
	a, err := readCkpt(fs.Arg(0))
	fatal(err)
	b, err := readCkpt(fs.Arg(1))
	fatal(err)
	diffs := ckpt.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Println("checkpoints are identical")
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	fmt.Printf("%d field(s) differ\n", len(diffs))
	os.Exit(1)
}

func cmdResume(args []string) {
	fs := flag.NewFlagSet("kagura-ckpt resume", flag.ExitOnError)
	buildSpec := specFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("resume needs exactly one checkpoint file"))
	}
	snap, err := readCkpt(fs.Arg(0))
	fatal(err)
	spec, err := buildSpec()
	fatal(err)
	cfg, err := spec.Config()
	fatal(err)
	if cfg.Fingerprint() != snap.ConfigHash {
		fmt.Fprintf(os.Stderr, "kagura-ckpt: config differs from the checkpoint's source — forking the warm prefix onto the variant config\n")
	}
	res, err := ehs.RunFrom(context.Background(), snap, cfg)
	fatal(err)

	fmt.Printf("resumed from cycle %d\n", snap.Time)
	fmt.Printf("completed:    %v\n", res.Completed)
	fmt.Printf("exec time:    %.3f ms\n", res.ExecSeconds*1e3)
	fmt.Printf("committed:    %d instructions (%d executed)\n", res.Committed, res.Executed)
	fmt.Printf("power cycles: %d\n", res.PowerCycles)
	fmt.Printf("energy total: %.3f µJ\n", res.Energy.Total()*1e6)
}

// cmdStore inspects a kagura-serve persistent store directory. The store is
// opened with an unbounded budget so inspection never evicts entries as a
// side effect; only gc's explicit budget removes anything.
func cmdStore(args []string) {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "kagura-ckpt: store needs a subcommand: ls, gc, or verify")
		os.Exit(2)
	}
	sub := args[0]
	fs := flag.NewFlagSet("kagura-ckpt store "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	budget := fs.Int64("budget", store.DefaultBudgetBytes,
		"gc: byte budget to evict down to (0 empties the store, negative = unbounded)")
	fs.Parse(args[1:])
	if *dir == "" {
		fatal(fmt.Errorf("store %s needs -dir", sub))
	}
	st, err := store.Open(store.Options{Dir: *dir, BudgetBytes: -1})
	fatal(err)
	scanned := st.Metrics()

	switch sub {
	case "ls":
		entries := st.Entries()
		for _, e := range entries {
			fmt.Printf("%-10s %12d  %s\n", e.Kind, e.Bytes, e.Key)
		}
		fmt.Printf("%d entries, %d bytes (%d quarantined at scan)\n",
			len(entries), st.Bytes(), scanned.ScanCorrupted)
	case "gc":
		evicted, err := st.GC(*budget)
		fatal(err)
		fmt.Printf("evicted %d entries, cleared the quarantine; store now %d entries, %d bytes\n",
			evicted, st.Len(), st.Bytes())
	case "verify":
		entries := st.Entries()
		bad := 0
		for _, e := range entries {
			payload, ok := st.Get(e.Kind, e.Key)
			if !ok {
				// Structural or checksum damage: Get already quarantined it.
				fmt.Printf("CORRUPT %-10s %s (quarantined)\n", e.Kind, e.Key)
				bad++
				continue
			}
			// The framing is intact — run the payload through its own decoder.
			var derr error
			switch e.Kind {
			case store.KindResult:
				_, derr = ckpt.DecodeResult(payload)
			case store.KindCheckpoint:
				_, derr = ckpt.Decode(payload)
			}
			if derr != nil {
				st.Quarantine(e.Kind, e.Key)
				fmt.Printf("CORRUPT %-10s %s: %v (quarantined)\n", e.Kind, e.Key, derr)
				bad++
			}
		}
		fmt.Printf("verified %d entries: %d corrupt (%d more quarantined at scan)\n",
			len(entries), bad, scanned.ScanCorrupted)
		if bad > 0 || scanned.ScanCorrupted > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "kagura-ckpt: unknown store subcommand %q (want ls, gc, or verify)\n", sub)
		os.Exit(2)
	}
}

// cmdJournal inspects a kagura-serve crash-journal directory
// (<store-dir>/journal, DESIGN.md §14). ls is strictly read-only: it decodes
// what it can and reports damage without repairing anything. verify opens
// the journal the way the server does — truncating a torn tail, quarantining
// a corrupt segment (degrading it to an empty replay rather than a crash,
// the same posture as `store verify`) — and exits 1 if it had to repair.
func cmdJournal(args []string) {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "kagura-ckpt: journal needs a subcommand: ls or verify")
		os.Exit(2)
	}
	sub := args[0]
	fs := flag.NewFlagSet("kagura-ckpt journal "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "journal directory (required)")
	fs.Parse(args[1:])
	if *dir == "" {
		fatal(fmt.Errorf("journal %s needs -dir", sub))
	}

	switch sub {
	case "ls":
		ins, err := journal.Inspect(*dir)
		fatal(err)
		for _, rec := range ins.Records {
			switch rec.Type {
			case journal.TypeJobSubmit:
				fork := ""
				if rec.ForkCycles > 0 {
					fork = fmt.Sprintf(" (fork@%d)", rec.ForkCycles)
				}
				fmt.Printf("%-14s %s%s\n", rec.Type, rec.Key, fork)
			case journal.TypeJobSettle:
				fmt.Printf("%-14s %s\n", rec.Type, rec.Key)
			case journal.TypeCampaignWave:
				fmt.Printf("%-14s %s wave %d (%d points)\n", rec.Type, rec.Campaign, rec.Wave, len(rec.Points))
			default:
				fmt.Printf("%-14s %s\n", rec.Type, rec.Campaign)
			}
		}
		fmt.Printf("%d records, %d bytes — fold: %d pending job(s), %d campaign(s)\n",
			len(ins.Records), ins.SizeBytes, len(ins.State.Pending), len(ins.State.Campaigns))
		if ins.HeaderErr != nil {
			fmt.Printf("DAMAGED header: %v (verify would quarantine this segment)\n", ins.HeaderErr)
		}
		if ins.Damage != nil {
			fmt.Printf("DAMAGED tail: %v (%d bytes; verify would truncate)\n", ins.Damage, ins.TornBytes)
		}
	case "verify":
		jnl, err := journal.Open(*dir)
		fatal(err)
		defer jnl.Close()
		m := jnl.Metrics()
		st := jnl.State()
		fmt.Printf("journal opens clean after recovery: %d pending job(s), %d campaign(s), %d bytes\n",
			len(st.Pending), len(st.Campaigns), m.SizeBytes)
		repaired := false
		if m.CorruptSegments > 0 {
			fmt.Printf("QUARANTINED %d corrupt segment(s) (see %s)\n", m.CorruptSegments, filepath.Join(*dir, "quarantine"))
			repaired = true
		}
		if m.TornBytesTruncated > 0 {
			fmt.Printf("TRUNCATED %d torn byte(s) from the tail\n", m.TornBytesTruncated)
			repaired = true
		}
		if repaired {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "kagura-ckpt: unknown journal subcommand %q (want ls or verify)\n", sub)
		os.Exit(2)
	}
}

func readCkpt(path string) (*ehs.Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ckpt.Decode(blob)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kagura-ckpt:", err)
		os.Exit(1)
	}
}
