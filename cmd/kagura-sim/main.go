// Command kagura-sim runs a single EHS simulation and prints its statistics.
//
// Usage:
//
//	kagura-sim -app jpeg -trace RFHome -codec BDI -acc -kagura
//	kagura-sim -app typeset -design NvMR -codec BDI -acc -kagura -trigger vol
//	kagura-sim -app jpeg -codec BDI -acc -json          # service JSON schema
//	kagura-sim -list
//
// Flags translate into the same RunSpec the kagura-serve HTTP API consumes,
// and -json emits the run in the service's RunResult schema, so CLI and API
// outputs are interchangeable.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kagura"
)

func main() {
	var (
		appName  = flag.String("app", "jpeg", "workload name (see -list)")
		appFile  = flag.String("workload", "", "JSON workload definition file (overrides -app)")
		traceSrc = flag.String("trace", "RFHome", "ambient source: RFHome, Solar, Thermal")
		seed     = flag.Uint64("seed", 1, "power-trace seed")
		scale    = flag.Float64("scale", 1.0, "workload length scale (1.0 ≈ 600k instructions)")
		codec    = flag.String("codec", "", "compression algorithm: BDI, FPC, C-Pack, DZC (empty = no compression)")
		useACC   = flag.Bool("acc", false, "gate compression behind the ACC predictor")
		useKag   = flag.Bool("kagura", false, "enable the Kagura controller")
		trigger  = flag.String("trigger", "mem", "Kagura trigger: mem or vol")
		policy   = flag.String("policy", "AIMD", "R_thres policy: AIMD, MIAD, AIAD, MIMD")
		design   = flag.String("design", "NVSRAMCache", "EHS design: NVSRAMCache, NvMR, SweepCache")
		decay    = flag.Int64("decay", 0, "EDBP cache-decay interval in cycles (0 = off)")
		prefetch = flag.Bool("prefetch", false, "enable the IPEX-style next-line prefetcher")
		compare  = flag.Bool("compare", false, "also run the compressor-free baseline and report speedup")
		cycleCSV = flag.String("cyclelog", "", "write the per-power-cycle log (committed,loads,stores,cycles,cpi) as CSV")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON in the kagura-serve RunResult schema")
		list     = flag.Bool("list", false, "list workloads, traces, codecs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads: ", strings.Join(kagura.Workloads(), " "))
		fmt.Println("traces:    RFHome Solar Thermal")
		fmt.Println("codecs:    ", strings.Join(kagura.Compressors(), " "))
		return
	}

	spec := kagura.RunSpec{
		App:           *appName,
		Scale:         *scale,
		Trace:         *traceSrc,
		Seed:          *seed,
		Codec:         *codec,
		ACC:           *useACC && *codec != "",
		Kagura:        *useKag,
		Design:        *design,
		DecayInterval: *decay,
		Prefetch:      *prefetch,
		CycleLog:      *cycleCSV != "",
	}
	if *useKag {
		spec.Policy = *policy
		spec.Trigger = *trigger
	}
	if *appFile != "" {
		blob, err := os.ReadFile(*appFile)
		fatal(err)
		spec.App = ""
		spec.Workload = json.RawMessage(blob)
	}

	spec, err := spec.Normalize()
	fatal(err)
	cfg, err := spec.Config()
	fatal(err)
	res, err := kagura.Run(cfg)
	fatal(err)

	var baseline *kagura.Result
	if *compare {
		baseCfg := kagura.DefaultConfig(cfg.App, cfg.Trace)
		baseCfg.Design = cfg.Design
		baseline, err = kagura.Run(baseCfg)
		fatal(err)
	}

	if *jsonOut {
		key, err := spec.Key()
		fatal(err)
		out := kagura.NewRunResult(&spec, key, false, res)
		if baseline != nil {
			out.VsBaseline = &kagura.RunComparison{
				Speedup:         res.Speedup(baseline),
				EnergyReduction: res.EnergyReduction(baseline),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(out))
	} else {
		report(cfg, res)
		if baseline != nil {
			fmt.Printf("\nvs compressor-free baseline:\n")
			fmt.Printf("  speedup:          %+.2f%%\n", 100*res.Speedup(baseline))
			fmt.Printf("  energy reduction: %+.2f%%\n", 100*res.EnergyReduction(baseline))
		}
	}

	if *cycleCSV != "" {
		fatal(writeCycleLog(*cycleCSV, res))
		if !*jsonOut {
			fmt.Printf("cycle log:        %s (%d power cycles)\n", *cycleCSV, len(res.Cycles))
		}
	}
}

func report(cfg kagura.SimConfig, res *kagura.Result) {
	fmt.Printf("config: %s\n", cfg.String())
	fmt.Printf("completed:        %v\n", res.Completed)
	fmt.Printf("exec time:        %.3f ms\n", res.ExecSeconds*1e3)
	fmt.Printf("committed:        %d instructions (%d executed)\n", res.Committed, res.Executed)
	fmt.Printf("power cycles:     %d (avg %.0f instructions/cycle)\n", res.PowerCycles, res.AvgCommittedPerCycle())
	e := res.Energy
	total := e.Total()
	fmt.Printf("energy total:     %.3f µJ\n", total*1e6)
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"compress", e.Compress}, {"decompress", e.Decompress},
		{"cache (other)", e.CacheOther}, {"memory", e.Memory},
		{"checkpoint/rst", e.Checkpoint}, {"others", e.Others},
	} {
		fmt.Printf("  %-15s %8.3f µJ (%5.2f%%)\n", c.name, c.v*1e6, 100*c.v/total)
	}
	fmt.Printf("ICache: %.2f%% miss (%d accesses)\n", 100*res.ICache.MissRate(), res.ICache.Accesses)
	fmt.Printf("DCache: %.2f%% miss (%d accesses)\n", 100*res.DCache.MissRate(), res.DCache.Accesses)
	fmt.Printf("compressions:     %d (+%d decompressions)\n", res.Compressions, res.Decompressions)
	if res.KaguraRMEntries > 0 {
		fmt.Printf("Kagura RM entries: %d\n", res.KaguraRMEntries)
	}
	if res.Prefetches > 0 {
		fmt.Printf("prefetches:       %d\n", res.Prefetches)
	}
}

// writeCycleLog dumps the per-power-cycle records as CSV for external
// analysis (Figs 12/14-style studies on custom configurations).
func writeCycleLog(path string, res *kagura.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"cycle", "committed", "loads", "stores", "cycles", "cpi"}); err != nil {
		return err
	}
	for i, c := range res.Cycles {
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatInt(c.Committed, 10),
			strconv.FormatInt(c.Loads, 10),
			strconv.FormatInt(c.Stores, 10),
			strconv.FormatInt(c.Cycles, 10),
			strconv.FormatFloat(c.CPI(), 'f', 3, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kagura-sim:", err)
		os.Exit(1)
	}
}
