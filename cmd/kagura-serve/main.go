// Command kagura-serve exposes the simulation service over HTTP.
//
// Usage:
//
//	kagura-serve -addr :8080 -workers 8 -timeout 5m
//
// Quick start:
//
//	curl -s localhost:8080/v1/workloads
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"app":"jpeg","scale":0.1,"codec":"BDI","acc":true,"kagura":true}'
//	curl -s -X POST localhost:8080/v1/batch \
//	    -d '{"jobs":[{"app":"jpeg","scale":0.1},{"app":"gsm","scale":0.1}]}'
//	curl -s localhost:8080/v1/jobs/job-00000001
//	curl -s -X POST localhost:8080/v1/campaigns -d @campaign.json
//	curl -s 'localhost:8080/v1/campaigns/c1?format=csv'
//	curl -s localhost:8080/metrics
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests get
// -grace to finish, then the worker pool is canceled and the process exits.
//
// Observability:
//
//   - -log-json emits structured JSON job-lifecycle events (submit, retry,
//     finish — each carrying the job ID, cache key, taxonomy error code, and
//     attempt count) on stderr. Off by default; the nil-logger fast path
//     costs one pointer check per event.
//   - -ops-addr starts a second listener serving net/http/pprof under
//     /debug/pprof/. It is separate from -addr so profiling is never exposed
//     on the API surface; bind it to localhost or a private interface.
//
// Persistence:
//
//   - -store-dir points the service at a persistent on-disk store for
//     results and warm-start checkpoints (DESIGN.md §12). Work computed
//     before a restart or deploy is served from disk instead of being
//     re-simulated; -store-budget bounds the disk footprint (oldest-access
//     entries are evicted beyond it). Inspect the directory offline with
//     `kagura-ckpt store ls|gc|verify -dir <dir>`.
//
// Crash recovery (DESIGN.md §14):
//
//   - With -store-dir set, a durable intent journal lives under
//     <store-dir>/journal. Every accepted job and every campaign wave is
//     recorded; on startup the server resumes interrupted campaigns and
//     replays unsettled jobs (serving 503 on /readyz until the replay pass
//     completes), so a SIGKILL mid-campaign costs a restart, not the sweep.
//     Inspect the journal offline with `kagura-ckpt journal ls|verify -dir
//     <store-dir>/journal`.
//
// For chaos drills, -chaos arms a deterministic fault-injection plan
// (internal/faultinject JSON: {"seed":42,"rules":[{"point":"simsvc.compute",
// "kind":"error","probability":0.05}]}); never set it in production.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"kagura"
	"kagura/internal/faultinject"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 1024, "queued-job bound before 503s")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
		retain   = flag.Int("retain", 4096, "finished jobs kept queryable by id")
		cacheCap = flag.Int("cache-capacity", 4096,
			"result-cache entry bound; LRU eviction beyond it (negative = unbounded)")
		storeDir = flag.String("store-dir", "",
			"persistent result/checkpoint store directory; survives restarts (empty = memory-only)")
		storeBudget = flag.Int64("store-budget", 0,
			"store disk budget in bytes (0 = 1 GiB, negative = unbounded)")
		grace = flag.Duration("grace", 15*time.Second, "shutdown grace period")

		logJSON = flag.Bool("log-json", false, "emit structured JSON job-lifecycle events on stderr")
		opsAddr = flag.String("ops-addr", "",
			"ops listener address serving /debug/pprof/ (empty = disabled; bind privately)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout")
		writeTimeout      = flag.Duration("write-timeout", 15*time.Minute, "http.Server WriteTimeout (must cover synchronous /v1/run)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		maxHeaderBytes    = flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")

		chaosPlan = flag.String("chaos", "", "fault-injection plan JSON file (staging chaos drills; see DESIGN.md §10)")
	)
	flag.Parse()

	if *chaosPlan != "" {
		raw, err := os.ReadFile(*chaosPlan)
		if err != nil {
			log.Fatalf("kagura-serve: chaos plan: %v", err)
		}
		var plan faultinject.Plan
		if err := json.Unmarshal(raw, &plan); err != nil {
			log.Fatalf("kagura-serve: chaos plan %s: %v", *chaosPlan, err)
		}
		if err := faultinject.Enable(plan); err != nil {
			log.Fatalf("kagura-serve: chaos plan %s: %v", *chaosPlan, err)
		}
		log.Printf("kagura-serve: CHAOS PLAN ARMED — %d rules, seed %d (%s)", len(plan.Rules), plan.Seed, *chaosPlan)
	}

	opts := kagura.DefaultServiceOptions()
	opts.Workers = *workers
	opts.QueueDepth = *queue
	opts.DefaultTimeout = *timeout
	opts.RetainJobs = *retain
	opts.CacheCapacity = *cacheCap
	opts.StoreDir = *storeDir
	opts.StoreBudgetBytes = *storeBudget
	if *logJSON {
		opts.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	var jnl *kagura.Journal
	if *storeDir != "" {
		var err error
		jnl, err = kagura.OpenJournal(filepath.Join(*storeDir, "journal"))
		if err != nil {
			// Same posture as a failing store: an explicitly requested durable
			// tier that cannot open is a configuration error.
			log.Fatalf("kagura-serve: journal: %v", err)
		}
		defer jnl.Close()
		opts.Journal = jnl
	}
	svc := kagura.NewService(opts)
	if err := svc.StoreErr(); err != nil {
		// An explicitly requested store that cannot open is a configuration
		// error: fail loudly at startup rather than silently serving
		// memory-only and recomputing everything after each deploy.
		log.Fatalf("kagura-serve: store: %v", err)
	}
	if m, ok := svc.StoreMetrics(); ok {
		log.Printf("kagura-serve: store %s — %d entries, %d bytes (%d quarantined at scan)",
			*storeDir, m.Entries, m.Bytes, m.ScanCorrupted)
	}

	if *opsAddr != "" {
		// pprof lives on its own mux and listener: the handlers are registered
		// explicitly (never via the net/http/pprof DefaultServeMux side
		// effect), so nothing debug-shaped can leak onto the API listener.
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("/debug/pprof/", pprof.Index)
		opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		opsSrv := &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux,
			ReadHeaderTimeout: *readHeaderTimeout,
		}
		defer opsSrv.Close()
		go func() {
			log.Printf("kagura-serve: ops listener (pprof) on %s", *opsAddr)
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("kagura-serve: ops listener: %v", err)
			}
		}()
	}

	var campaigns *kagura.CampaignManager
	if jnl != nil {
		campaigns = kagura.NewCampaignManagerJournaled(svc, jnl)
		if resumed := campaigns.ResumeFromJournal(); len(resumed) > 0 {
			log.Printf("kagura-serve: resumed %d interrupted campaign(s) from journal: %v", len(resumed), resumed)
		}
		svc.StartJournalReplay() // /readyz reports not-ready until the pass completes
		jm := jnl.Metrics()
		log.Printf("kagura-serve: journal — %d pending jobs, %d campaigns, %d bytes",
			jm.PendingJobs, jm.Campaigns, jm.SizeBytes)
	} else {
		campaigns = kagura.NewCampaignManager(svc)
	}
	defer campaigns.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(kagura.CampaignHandler(campaigns, kagura.ServiceHandler(svc))),
		ReadHeaderTimeout: *readHeaderTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("kagura-serve: listening on %s (%d workers)", *addr, svc.Options().Workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("kagura-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("kagura-serve: shutting down (grace %s)", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("kagura-serve: forced shutdown: %v", err)
		}
	}
	campaigns.Close() // cancel campaign goroutines before their service goes away
	svc.Close()       // reap in-flight jobs before the final tally
	m := svc.Metrics()
	log.Printf("kagura-serve: done — %d run, %d cached, %d failed, %d canceled",
		m.JobsRun, m.JobsCached, m.JobsFailed, m.JobsCanceled)
}

// logRequests is a minimal access-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status,
			fmt.Sprintf("%.1fms", float64(time.Since(start).Microseconds())/1000))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
