package main

import (
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: kagura
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput 	      10	   8284947 ns/op	    119983 instrs/op	  14482751 instrs/s	  176224 B/op	     110 allocs/op
BenchmarkSimCore/BDI/NVSRAMCache-4         	      10	   5677607 ns/op	     59992 instrs/op	  10567067 instrs/s	  179536 B/op	     119 allocs/op
BenchmarkFillWriteback/BDI          	 9318690	       133.9 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	kagura	1.1s
`

func testSnapshot() []snapshotBench {
	return []snapshotBench{
		{Name: "BenchmarkSimulatorThroughput", NsPerOp: 8284947, AllocsPerOp: 110,
			Metrics: map[string]float64{"instrs/s": 14482751}},
		{Name: "BenchmarkSimCore/BDI/NVSRAMCache", NsPerOp: 5677607, AllocsPerOp: 119,
			Metrics: map[string]float64{"instrs/s": 10567067}},
		{Name: "BenchmarkFillWriteback/BDI", NsPerOp: 133.9, AllocsPerOp: 0},
		{Name: "BenchmarkNotRunInCI", NsPerOp: 1, AllocsPerOp: 1},
	}
}

func TestParseBenchOutput(t *testing.T) {
	run, err := parseBenchOutput(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(run) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(run), run)
	}
	st := run["BenchmarkSimulatorThroughput"]
	if st.metrics["instrs/s"] != 14482751 || st.allocs != 110 || st.nsPerOp != 8284947 { //kagura:allow floateq parsed values are exact
		t.Fatalf("throughput line parsed wrong: %+v", st)
	}
	// The -4 GOMAXPROCS suffix must strip, the /sub/names must survive.
	if _, ok := run["BenchmarkSimCore/BDI/NVSRAMCache"]; !ok {
		t.Fatalf("suffixed sub-benchmark not normalized: %+v", run)
	}
}

func TestGateCleanRun(t *testing.T) {
	run, _ := parseBenchOutput(strings.NewReader(sampleRun))
	regs, matched := gate(testSnapshot(), run, 0.15)
	if matched != 3 {
		t.Fatalf("matched %d, want 3 (absent benchmarks skip)", matched)
	}
	if len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
}

func TestGateThroughputRegression(t *testing.T) {
	// 20% slower than the snapshot: outside the 15% tolerance.
	slow := strings.Replace(sampleRun, "14482751 instrs/s", "11586200 instrs/s", 1)
	run, _ := parseBenchOutput(strings.NewReader(slow))
	regs, _ := gate(testSnapshot(), run, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "throughput") {
		t.Fatalf("throughput regression not caught: %v", regs)
	}
	// The same run passes a looser gate.
	if regs, _ := gate(testSnapshot(), run, 0.25); len(regs) != 0 {
		t.Fatalf("25%% tolerance should absorb a 20%% dip: %v", regs)
	}
}

func TestGateAllocRegression(t *testing.T) {
	// Zero-alloc budget is hard: one allocation fails regardless of tolerance.
	leaky := strings.Replace(sampleRun, "0 B/op	       0 allocs/op", "32 B/op	       1 allocs/op", 1)
	run, _ := parseBenchOutput(strings.NewReader(leaky))
	regs, _ := gate(testSnapshot(), run, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "budget is zero") {
		t.Fatalf("zero-budget alloc regression not caught: %v", regs)
	}
	// Non-zero snapshots get the relative tolerance: 110 -> 130 is ~18%.
	bloat := strings.Replace(sampleRun, "110 allocs/op", "130 allocs/op", 1)
	run, _ = parseBenchOutput(strings.NewReader(bloat))
	regs, _ = gate(testSnapshot(), run, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("alloc growth regression not caught: %v", regs)
	}
}

func TestGateNsPerOpFallback(t *testing.T) {
	// FillWriteback has no instrs/s metric: ns/op growth gates instead.
	slow := strings.Replace(sampleRun, "133.9 ns/op", "200.0 ns/op", 1)
	run, _ := parseBenchOutput(strings.NewReader(slow))
	regs, _ := gate(testSnapshot(), run, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("ns/op regression not caught: %v", regs)
	}
}
