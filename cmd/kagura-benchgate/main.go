// Command kagura-benchgate compares a `go test -bench` run against the
// checked-in BENCH_simcore.json perf snapshot and fails on regressions —
// the CI benchmark-regression gate for the simulator's inner loop
// (DESIGN.md §15).
//
// Usage:
//
//	go test . -run='^$' -bench='...' -benchtime=10x -benchmem | \
//	    kagura-benchgate -snapshot BENCH_simcore.json
//
// The bench output (any number of concatenated runs) is read from stdin or
// from a file given with -input. For every benchmark present in both the
// run and the snapshot, two checks apply, each with the same relative
// tolerance (-tolerance, default 0.15):
//
//   - Throughput: the run's instrs/s must not fall more than the tolerance
//     below the snapshot's (benchmarks without an instrs/s metric gate on
//     ns/op growth instead).
//   - Allocations: the run's allocs/op must not exceed the snapshot's by
//     more than the tolerance. A snapshot value of zero is a hard budget:
//     any allocation fails.
//
// Benchmarks in the snapshot but missing from the run are skipped (CI may
// gate a subset); a run that matches nothing at all is an error, so a typo
// in the -bench pattern cannot silently pass the gate. Exit status: 0
// clean, 1 regression or no overlap, 2 usage/parse failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// snapshotFile mirrors the BENCH_simcore.json layout (extra fields ignored).
type snapshotFile struct {
	Benchmarks []snapshotBench `json:"benchmarks"`
}

type snapshotBench struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"nsPerOp"`
	AllocsPerOp float64            `json:"allocsPerOp"`
	Metrics     map[string]float64 `json:"metrics"`
}

// benchResult is one parsed `go test -bench` output line.
type benchResult struct {
	name    string
	nsPerOp float64
	allocs  float64
	metrics map[string]float64
}

// parseBenchLine parses one line of `go test -bench` output, returning
// ok=false for non-benchmark lines (headers, PASS, table output).
// Format: Benchmark<Name>[-P] <iterations> {<value> <unit>}...
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends on parallel hosts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return benchResult{}, false
	}
	r := benchResult{name: name, allocs: -1, metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.nsPerOp = v
		case "allocs/op":
			r.allocs = v
		case "B/op":
			// tracked via allocs/op; byte counts stay informational
		default:
			r.metrics[unit] = v
		}
	}
	return r, true
}

// parseBenchOutput scans bench output (possibly several concatenated runs)
// into results keyed by benchmark name. Repeated names keep the last run.
func parseBenchOutput(in io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if r, ok := parseBenchLine(sc.Text()); ok {
			out[r.name] = r
		}
	}
	return out, sc.Err()
}

// gate compares run results against the snapshot and returns the list of
// regression descriptions plus how many benchmarks overlapped.
func gate(snap []snapshotBench, run map[string]benchResult, tol float64) (regressions []string, matched int) {
	for _, s := range snap {
		r, ok := run[s.Name]
		if !ok {
			continue
		}
		matched++
		// Throughput: prefer the host-rate metric; fall back to ns/op.
		if want, ok := s.Metrics["instrs/s"]; ok && want > 0 {
			if got, ok := r.metrics["instrs/s"]; ok && got < want*(1-tol) {
				regressions = append(regressions,
					fmt.Sprintf("%s: throughput %0.f instrs/s, snapshot %0.f (-%0.f%% > %0.f%% tolerance)",
						s.Name, got, want, 100*(1-got/want), 100*tol))
			}
		} else if s.NsPerOp > 0 && r.nsPerOp > s.NsPerOp*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %0.2f ns/op, snapshot %0.2f (+%0.f%% > %0.f%% tolerance)",
					s.Name, r.nsPerOp, s.NsPerOp, 100*(r.nsPerOp/s.NsPerOp-1), 100*tol))
		}
		// Allocations: zero is a hard budget, otherwise the tolerance applies.
		if r.allocs < 0 {
			continue // run lacked -benchmem; nothing to check
		}
		if s.AllocsPerOp == 0 { //kagura:allow floateq zero allocs is an exact budget, not a measurement
			if r.allocs > 0 {
				regressions = append(regressions,
					fmt.Sprintf("%s: %0.f allocs/op, snapshot budget is zero", s.Name, r.allocs))
			}
		} else if r.allocs > s.AllocsPerOp*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %0.f allocs/op, snapshot %0.f (+%0.f%% > %0.f%% tolerance)",
					s.Name, r.allocs, s.AllocsPerOp, 100*(r.allocs/s.AllocsPerOp-1), 100*tol))
		}
	}
	return regressions, matched
}

func main() {
	snapPath := flag.String("snapshot", "BENCH_simcore.json", "recorded benchmark snapshot to gate against")
	input := flag.String("input", "-", "bench output file ('-' = stdin)")
	tol := flag.Float64("tolerance", 0.15, "relative regression tolerance")
	flag.Parse()

	blob, err := os.ReadFile(*snapPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kagura-benchgate: %v\n", err)
		os.Exit(2)
	}
	var snap snapshotFile
	if err := json.Unmarshal(blob, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "kagura-benchgate: parse %s: %v\n", *snapPath, err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kagura-benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	run, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kagura-benchgate: read bench output: %v\n", err)
		os.Exit(2)
	}

	regressions, matched := gate(snap.Benchmarks, run, *tol)
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "kagura-benchgate: no benchmark in the input matches %s — check the -bench pattern\n", *snapPath)
		os.Exit(1)
	}
	fmt.Printf("kagura-benchgate: %d benchmark(s) compared against %s (tolerance %0.f%%)\n",
		matched, *snapPath, 100**tol)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("kagura-benchgate: OK")
}
