// Command tracegen synthesizes and inspects ambient power traces in the
// paper's text format (one average-power sample per 10µs interval).
//
// Usage:
//
//	tracegen -source RFHome -seed 3 -o rfhome.trace
//	tracegen -stats rfhome.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"kagura"
	"kagura/internal/powertrace"
)

func main() {
	var (
		source  = flag.String("source", "RFHome", "ambient source: RFHome, Solar, Thermal")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (empty = stdout)")
		samples = flag.Int("samples", 0, "truncate to this many samples (0 = full trace)")
		stats   = flag.String("stats", "", "read a trace file and print its statistics instead of generating")
	)
	flag.Parse()

	if *stats != "" {
		f, err := os.Open(*stats)
		fatal(err)
		defer f.Close()
		tr, err := powertrace.Read(f)
		fatal(err)
		printStats(tr)
		return
	}

	tr, err := kagura.Trace(*source, *seed)
	fatal(err)
	if *samples > 0 && *samples < len(tr.Samples) {
		tr.Samples = tr.Samples[:*samples]
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	fatal(tr.Write(w))
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d samples (%.3fs of %s) to %s\n",
			len(tr.Samples), tr.Duration(), tr.Name, *out)
		printStats(tr)
	}
}

func printStats(tr *kagura.PowerTrace) {
	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "trace %s: %d samples, %.3fs\n", tr.Name, len(tr.Samples), tr.Duration())
	fmt.Fprintf(os.Stderr, "  mean %.1fµW  p50 %.1fµW  p90 %.1fµW  peak %.1fµW\n",
		s.MeanWatts*1e6, s.P50*1e6, s.P90*1e6, s.PeakWatts*1e6)
	fmt.Fprintf(os.Stderr, "  stable share %.1f%%  near-zero share %.1f%%\n",
		100*s.StableShare, 100*s.ZeroShare)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
