// Command kagura-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kagura-bench                         # everything, full fidelity
//	kagura-bench -experiments fig13      # just the headline comparison
//	kagura-bench -quick                  # fast smoke run
//	kagura-bench -scale 0.5 -seeds 1,2   # custom fidelity
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"kagura"
)

func main() {
	var (
		expList = flag.String("experiments", "all", "comma-separated experiment ids (see -list) or 'all'")
		quick   = flag.Bool("quick", false, "reduced fidelity for a fast smoke run")
		scale   = flag.Float64("scale", 0, "workload length scale (0 = option default)")
		seeds   = flag.String("seeds", "", "comma-separated trace seeds (empty = option default)")
		apps    = flag.String("apps", "", "comma-separated app subset (empty = all)")
		format  = flag.String("format", "text", "output format: text, csv, json")
		outDir  = flag.String("out", "", "write each experiment to <out>/<id>.<format> instead of stdout")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(kagura.Experiments(), " "))
		return
	}

	opts := kagura.DefaultOptions()
	if *quick {
		opts = kagura.QuickOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seeds != "" {
		opts.Seeds = nil
		for _, s := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			fatal(err)
			opts.Seeds = append(opts.Seeds, v)
		}
	}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}

	ids := kagura.Experiments()
	if *expList != "all" {
		ids = strings.Split(*expList, ",")
	}

	lab := kagura.NewLab(opts)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := lab.Run(id)
		fatal(err)
		table := res.Render()
		if *outDir != "" {
			ext := *format
			if ext == "text" {
				ext = "txt"
			}
			path := filepath.Join(*outDir, table.ID+"."+ext)
			f, err := os.Create(path)
			fatal(err)
			fatal(table.Format(*format, f))
			fatal(f.Close())
			fmt.Printf("%s -> %s (%.1fs)\n", id, path, time.Since(start).Seconds())
			continue
		}
		fatal(table.Format(*format, os.Stdout))
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kagura-bench:", err)
		os.Exit(1)
	}
}
