// Quickstart: run one MediaBench workload on the paper's default EHS with
// and without intermittence-aware cache compression, and compare.
package main

import (
	"fmt"
	"log"

	"kagura"
)

func main() {
	// The jpeg decoder workload (~600k instructions at scale 1.0; we use a
	// shorter run so the example finishes in a second or two).
	app, err := kagura.Workload("jpegd", 0.4)
	if err != nil {
		log.Fatal(err)
	}
	// Ambient RF harvested in a home environment — weak and bursty, so the
	// system dies and reboots hundreds of times per second.
	trace, err := kagura.Trace("RFHome", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Three systems, identical hardware except the compression stack:
	base := kagura.DefaultConfig(app, trace)          // no compression
	acc := base.WithACC(kagura.BDI{})                 // ACC-gated BDI
	kag := acc.WithKagura(kagura.DefaultController()) // + Kagura

	bRes, err := kagura.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	aRes, err := kagura.Run(acc)
	if err != nil {
		log.Fatal(err)
	}
	kRes, err := kagura.Run(kag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %s: %d instructions, %d power outages (baseline)\n",
		app.Name, trace.Name, bRes.Committed, bRes.PowerCycles)
	fmt.Printf("%-22s %12s %12s %14s\n", "config", "time (ms)", "energy (µJ)", "compressions")
	for _, row := range []struct {
		name string
		r    *kagura.Result
	}{
		{"baseline", bRes}, {"+ACC (BDI)", aRes}, {"+ACC+Kagura", kRes},
	} {
		fmt.Printf("%-22s %12.2f %12.3f %14d\n",
			row.name, row.r.ExecSeconds*1e3, row.r.Energy.Total()*1e6, row.r.Compressions)
	}
	fmt.Printf("\nACC alone:   %+6.2f%% speedup, %+6.2f%% energy\n",
		100*aRes.Speedup(bRes), 100*aRes.EnergyReduction(bRes))
	fmt.Printf("ACC+Kagura:  %+6.2f%% speedup, %+6.2f%% energy\n",
		100*kRes.Speedup(bRes), 100*kRes.EnergyReduction(bRes))
	fmt.Printf("Kagura entered low-power RM mode %d times across %d power cycles.\n",
		kRes.KaguraRMEntries, kRes.PowerCycles)
}
