// AIoT-inference: batteryless machine-learning inference at the edge
// (§VII-B). The paper argues AIoT workloads are where Kagura matters most:
// inference is memory-intensive, needs low latency for quality of service,
// and a compressed cache effectively lets the device run a larger model.
//
// The example sweeps the model's working-set size and reports how the
// compression stack changes inference throughput (committed instructions per
// second of wall-clock harvesting time) — the QoS proxy.
package main

import (
	"fmt"
	"log"

	"kagura"
)

// inferenceApp models one quantized-NN layer loop: weights are streamed with
// partial reuse (the "tile" that should stay cached), activations are narrow
// integers, and accumulators live in a small hot region.
func inferenceApp(tileWords int) *kagura.App {
	app := &kagura.App{
		Name: fmt.Sprintf("aiot-tile%d", tileWords),
		Seed: 7_2026,
		Regions: []kagura.Region{
			// Accumulators / im2col window: small and hot.
			{Base: 0x1000_0000, SizeWords: 40, HotWords: 40, Class: kagura.ClassNarrow},
			// Weight tile: the knob — quantized weights are zero-heavy, so
			// compression can double the tile the cache retains.
			{Base: 0x1010_0000, SizeWords: tileWords, HotWords: tileWords, Class: kagura.ClassZeros},
			// Activation stream.
			{Base: 0x1020_0000, SizeWords: 4096, Class: kagura.ClassNarrow},
		},
		Phases: []kagura.Phase{{
			Iterations: 40_000,
			Body: []kagura.Slot{
				{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 1}, // weight
				{Kind: kagura.Arith}, // MAC
				{Kind: kagura.Load, Pattern: kagura.PatSeq, Region: 2}, // activation
				{Kind: kagura.Arith},
				{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 1}, // weight
				{Kind: kagura.Arith},
				{Kind: kagura.Store, Pattern: kagura.PatHot, Region: 0}, // accumulate
				{Kind: kagura.Arith},
				{Kind: kagura.Arith},
				{Kind: kagura.Arith},
			},
			CodeBase:  0x0001_0000,
			CodeWords: 60,
		}},
	}
	app.Build()
	return app
}

func main() {
	trace, err := kagura.Trace("RFHome", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Batteryless NN inference: weight-tile size vs compression stack")
	fmt.Printf("%-12s %16s %16s %10s\n", "tile", "base kinstr/s", "Kagura kinstr/s", "gain")

	for _, tileWords := range []int{48, 96, 144, 192} {
		app := inferenceApp(tileWords)
		base, err := kagura.Run(kagura.DefaultConfig(app, trace))
		if err != nil {
			log.Fatal(err)
		}
		kag, err := kagura.Run(kagura.DefaultConfig(app, trace).
			WithACC(kagura.BDI{}).WithKagura(kagura.DefaultController()))
		if err != nil {
			log.Fatal(err)
		}
		throughput := func(r *kagura.Result) float64 {
			return float64(r.Committed) / r.ExecSeconds / 1e3
		}
		fmt.Printf("%5dB %16.0f %16.0f %9.2f%%\n",
			tileWords*4, throughput(base), throughput(kag), 100*kag.Speedup(base))
	}
	fmt.Println("\nMid-size tiles (fitting the cache only when compressed) benefit most:")
	fmt.Println("that is the regime where a compressed cache effectively runs a larger model")
	fmt.Println("at the same QoS, and where Kagura prevents the outage-wasted compressions.")
}
