// Policy-tuning: explore Kagura's controller knobs — the R_thres adaptation
// policy (Fig 21), the additive increase step (Fig 22), and the trigger
// style (Fig 19) — on a single workload.
//
// The sweep itself is declarative: campaign.json names the three axes in
// star mode (each knob varied against the same base run) and the campaign
// engine executes them against the simulation service, baseline comparisons
// included. main only renders the report. The same spec file works
// unchanged with the CLI or a server:
//
//	kagura-campaign run -spec examples/policy-tuning/campaign.json
//	curl -X POST localhost:8080/v1/campaigns -d @examples/policy-tuning/campaign.json
package main

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"log"
	"strings"

	"kagura"
)

//go:embed campaign.json
var campaignJSON []byte

func main() {
	out, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

func run() (string, error) {
	spec, err := kagura.DecodeCampaignSpec(bytes.NewReader(campaignJSON))
	if err != nil {
		return "", err
	}
	svc := kagura.NewService(kagura.DefaultServiceOptions())
	defer svc.Close()
	runner := &kagura.CampaignRunner{Svc: svc}
	rep, err := runner.Run(context.Background(), spec)
	if err != nil {
		return "", err
	}
	return render(spec, rep)
}

func render(spec *kagura.CampaignSpec, rep *kagura.CampaignReport) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: typeset-style text layout where plain ACC wastes energy\n\n", spec.Base.App)

	b.WriteString("R_thres adaptation policy (paper selects AIMD):\n")
	for _, p := range pointsFor(rep, "policy") {
		var policy string
		if err := json.Unmarshal(p.Params[0].Value, &policy); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-5s %+6.2f%% speedup, %+6.2f%% energy, %5d compressions\n",
			policy, 100**p.Metrics.SpeedupVsBaseline, 100**p.Metrics.EnergyReductionVsBaseline,
			p.Metrics.Compressions)
	}

	b.WriteString("\nadditive increase step (paper selects 10%):\n")
	for _, p := range pointsFor(rep, "increaseStep") {
		var step float64
		if err := json.Unmarshal(p.Params[0].Value, &step); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %4.0f%%  %+6.2f%% speedup, %+6.2f%% energy\n",
			step*100, 100**p.Metrics.SpeedupVsBaseline, 100**p.Metrics.EnergyReductionVsBaseline)
	}

	b.WriteString("\ntrigger style (memory-count vs voltage monitor):\n")
	for _, p := range pointsFor(rep, "trigger") {
		var trig string
		if err := json.Unmarshal(p.Params[0].Value, &trig); err != nil {
			return "", err
		}
		if trig == "voltage" {
			trig = "vol" // the hardware register's display name (Trigger.String)
		}
		fmt.Fprintf(&b, "  %-4s  %+6.2f%% speedup, %d RM entries\n",
			trig, 100**p.Metrics.SpeedupVsBaseline, p.Metrics.KaguraRMEntries)
	}
	return b.String(), nil
}

// pointsFor selects the star points that vary one named axis, in value order.
func pointsFor(rep *kagura.CampaignReport, param string) []kagura.CampaignPoint {
	var out []kagura.CampaignPoint
	for _, p := range rep.Points {
		if len(p.Params) == 1 && p.Params[0].Param == param {
			out = append(out, p)
		}
	}
	return out
}
