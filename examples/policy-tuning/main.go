// Policy-tuning: explore Kagura's controller knobs — the R_thres adaptation
// policy (Fig 21), the additive increase step (Fig 22), and the trigger
// style (Fig 19) — on a single workload, using only the public API.
package main

import (
	"fmt"
	"log"

	"kagura"
)

func main() {
	app, err := kagura.Workload("typeset", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := kagura.Trace("RFHome", 2)
	if err != nil {
		log.Fatal(err)
	}
	base, err := kagura.Run(kagura.DefaultConfig(app, trace))
	if err != nil {
		log.Fatal(err)
	}
	run := func(kc kagura.ControllerConfig) *kagura.Result {
		res, err := kagura.Run(kagura.DefaultConfig(app, trace).
			WithACC(kagura.BDI{}).WithKagura(kc))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("workload %s: typeset-style text layout where plain ACC wastes energy\n\n", app.Name)

	fmt.Println("R_thres adaptation policy (paper selects AIMD):")
	for _, p := range []kagura.Policy{kagura.AIMD, kagura.MIAD, kagura.AIAD, kagura.MIMD} {
		kc := kagura.DefaultController()
		kc.Policy = p
		r := run(kc)
		fmt.Printf("  %-5s %+6.2f%% speedup, %+6.2f%% energy, %5d compressions\n",
			p, 100*r.Speedup(base), 100*r.EnergyReduction(base), r.Compressions)
	}

	fmt.Println("\nadditive increase step (paper selects 10%):")
	for _, step := range []float64{0.05, 0.10, 0.15, 0.20} {
		kc := kagura.DefaultController()
		kc.IncreaseStep = step
		r := run(kc)
		fmt.Printf("  %4.0f%%  %+6.2f%% speedup, %+6.2f%% energy\n",
			step*100, 100*r.Speedup(base), 100*r.EnergyReduction(base))
	}

	fmt.Println("\ntrigger style (memory-count vs voltage monitor):")
	for _, trig := range []kagura.Trigger{kagura.TriggerMem, kagura.TriggerVoltage} {
		kc := kagura.DefaultController()
		kc.Trigger = trig
		r := run(kc)
		fmt.Printf("  %-4s  %+6.2f%% speedup, %d RM entries\n",
			trig, 100*r.Speedup(base), r.KaguraRMEntries)
	}
}
