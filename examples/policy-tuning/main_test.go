package main

import (
	"fmt"
	"strings"
	"testing"

	"kagura"
)

// The campaign-driven example must print byte-for-byte what the original
// hand-rolled loops printed: same simulations, same baseline comparisons,
// same formatting. legacyOutput below IS the pre-campaign main(), kept as
// the migration oracle.
func TestCampaignOutputMatchesLegacyLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 11-simulation tuning sweep twice")
	}
	want, err := legacyOutput()
	if err != nil {
		t.Fatal(err)
	}
	got, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("campaign output diverges from the legacy loops:\n--- legacy\n%s\n--- campaign\n%s", want, got)
	}
}

func legacyOutput() (string, error) {
	app, err := kagura.Workload("typeset", 0.5)
	if err != nil {
		return "", err
	}
	trace, err := kagura.Trace("RFHome", 2)
	if err != nil {
		return "", err
	}
	base, err := kagura.Run(kagura.DefaultConfig(app, trace))
	if err != nil {
		return "", err
	}
	run := func(kc kagura.ControllerConfig) (*kagura.Result, error) {
		return kagura.Run(kagura.DefaultConfig(app, trace).
			WithACC(kagura.BDI{}).WithKagura(kc))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: typeset-style text layout where plain ACC wastes energy\n\n", app.Name)

	b.WriteString("R_thres adaptation policy (paper selects AIMD):\n")
	for _, p := range []kagura.Policy{kagura.AIMD, kagura.MIAD, kagura.AIAD, kagura.MIMD} {
		kc := kagura.DefaultController()
		kc.Policy = p
		r, err := run(kc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-5s %+6.2f%% speedup, %+6.2f%% energy, %5d compressions\n",
			p, 100*r.Speedup(base), 100*r.EnergyReduction(base), r.Compressions)
	}

	b.WriteString("\nadditive increase step (paper selects 10%):\n")
	for _, step := range []float64{0.05, 0.10, 0.15, 0.20} {
		kc := kagura.DefaultController()
		kc.IncreaseStep = step
		r, err := run(kc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %4.0f%%  %+6.2f%% speedup, %+6.2f%% energy\n",
			step*100, 100*r.Speedup(base), 100*r.EnergyReduction(base))
	}

	b.WriteString("\ntrigger style (memory-count vs voltage monitor):\n")
	for _, trig := range []kagura.Trigger{kagura.TriggerMem, kagura.TriggerVoltage} {
		kc := kagura.DefaultController()
		kc.Trigger = trig
		r, err := run(kc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-4s  %+6.2f%% speedup, %d RM entries\n",
			trig, 100*r.Speedup(base), r.KaguraRMEntries)
	}
	return b.String(), nil
}
