// Sensor-logger: a batteryless environmental sensor node, the canonical EHS
// deployment the paper's introduction motivates (stream/river monitoring,
// structural health tracking).
//
// The example builds a *custom* workload with the public API — a sampling →
// filtering → ring-buffer-logging pipeline — and shows how Kagura behaves
// across the three ambient sources: the controller adapts its
// compression-disabling threshold to each source's power-cycle pattern.
package main

import (
	"fmt"
	"log"

	"kagura"
)

// sensorApp models one duty cycle of a sensing node:
//   - read a burst of ADC samples into a small working buffer (narrow values),
//   - run an FIR-like filter over the buffer (arithmetic + hot reuse),
//   - append compressed readings to a log ring (sequential stores,
//     zero-heavy deltas).
func sensorApp() *kagura.App {
	app := &kagura.App{
		Name: "sensor-logger",
		Seed: 2026,
		Regions: []kagura.Region{
			// ADC sample buffer: 48 words of narrow values, heavily reused.
			{Base: 0x1000_0000, SizeWords: 48, HotWords: 48, Class: kagura.ClassNarrow},
			// Filter coefficients + state: fits alongside the buffer only
			// when compressed.
			{Base: 0x1010_0000, SizeWords: 96, HotWords: 96, Class: kagura.ClassZeros},
			// Log ring: sequential append, no reuse.
			{Base: 0x1020_0000, SizeWords: 8192, Class: kagura.ClassZeros},
		},
		Phases: []kagura.Phase{
			{ // sample + filter
				Iterations: 30_000,
				Body: []kagura.Slot{
					{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 0},
					{Kind: kagura.Arith},
					{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 1},
					{Kind: kagura.Arith},
					{Kind: kagura.Arith},
					{Kind: kagura.Store, Pattern: kagura.PatHot, Region: 0},
					{Kind: kagura.Arith},
					{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 1},
					{Kind: kagura.Arith},
					{Kind: kagura.Arith},
				},
				CodeBase:  0x0001_0000,
				CodeWords: 90,
			},
			{ // log append
				Iterations: 10_000,
				Body: []kagura.Slot{
					{Kind: kagura.Load, Pattern: kagura.PatHot, Region: 0},
					{Kind: kagura.Arith},
					{Kind: kagura.Store, Pattern: kagura.PatSeq, Region: 2},
					{Kind: kagura.Arith},
					{Kind: kagura.Arith},
					{Kind: kagura.Arith},
				},
				CodeBase:  0x0002_0000,
				CodeWords: 42,
			},
		},
	}
	app.Build()
	return app
}

func main() {
	app := sensorApp()
	fmt.Printf("sensor node workload: %d instructions, %.0f%% memory ops\n\n",
		app.Len(), 100*app.MemOpFraction())
	fmt.Printf("%-9s %14s %14s %14s %10s\n", "source", "base time", "Kagura time", "speedup", "outages")

	for _, source := range []string{"RFHome", "Solar", "Thermal"} {
		trace, err := kagura.Trace(source, 1)
		if err != nil {
			log.Fatal(err)
		}
		base, err := kagura.Run(kagura.DefaultConfig(app, trace))
		if err != nil {
			log.Fatal(err)
		}
		kag, err := kagura.Run(kagura.DefaultConfig(app, trace).
			WithACC(kagura.BDI{}).WithKagura(kagura.DefaultController()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %11.2f ms %11.2f ms %13.2f%% %10d\n",
			source, base.ExecSeconds*1e3, kag.ExecSeconds*1e3,
			100*kag.Speedup(base), base.PowerCycles)
	}
	fmt.Println("\nThe bursty RF source forces the most power cycles; Kagura's per-cycle")
	fmt.Println("estimator follows each source's rhythm without reconfiguration.")
}
